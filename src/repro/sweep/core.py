"""Sweep expansion and execution.

:func:`expand_axes` takes the cartesian product of the axes into
:class:`SweepPoint`\\ s — each one a derived
:class:`~repro.engine.MachineSpec` (``nprocs`` swept through the spec's
processor count, every other axis through a validated
:mod:`repro.machine.variants` override) whose machine is probe-built
eagerly, so an unknown primitive name or out-of-domain value fails
before any job runs.

:func:`run_sweep` then builds the ``benchmark x experiment`` matrix for
every point with :func:`~repro.engine.core.build_matrix` and submits the
whole thing as *one* job list to *one*
:class:`~repro.engine.ExperimentEngine` — swept cells ride the same
result cache, process pool, and telemetry as the paper study, and each
variant's jobs fingerprint independently through the override content.

When the axes are cost-only (no ``nprocs``) and the run is a TIMING one,
the misses route through :func:`repro.engine.batch.run_jobs_batched`
by default: one :func:`repro.simulate_many` call per ``benchmark x
experiment`` cell evaluates every variant at once, bit-identical to the
per-job path and writing the same per-variant cache records.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.batch import run_jobs_batched
from repro.engine.cache import RECORD_SCHEMA
from repro.engine.core import (
    ConfigOverride,
    ExperimentEngine,
    JobOutcome,
    StudyResult,
    build_matrix,
)
from repro.engine.jobs import MachineSpec
from repro.errors import MachineError
from repro.experiments_registry import EXPERIMENT_KEYS, ExperimentResult
from repro.machine.variants import OverrideValue
from repro.obs import core as obs
from repro.programs import BENCHMARKS
from repro.runtime import ExecutionMode
from repro.sweep.axes import NPROCS_AXIS, AxisValue, SweepAxis

__all__ = ["SweepPoint", "SweepResult", "expand_axes", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid: axis coordinates and the derived
    machine they resolve to."""

    coords: Tuple[Tuple[str, AxisValue], ...]
    machine: MachineSpec

    @property
    def variant(self) -> str:
        """The machine's content-stable variant id (``"base"`` when only
        ``nprocs`` is swept)."""
        return self.machine.variant

    def coord(self, axis: str) -> AxisValue:
        for name, value in self.coords:
            if name == axis:
                return value
        raise KeyError(f"sweep point has no axis {axis!r}")

    def label(self) -> str:
        if not self.coords:
            return "base"
        return ",".join(f"{name}={value:g}" for name, value in self.coords)


def expand_axes(
    axes: Sequence[SweepAxis],
    base: Union[MachineSpec, str, None] = None,
    library: Optional[str] = None,
) -> Tuple[SweepPoint, ...]:
    """The cartesian product of ``axes`` over a base machine spec.

    Points come out in row-major order (last axis fastest), each with
    its machine probe-built once for validation.  Axis overrides stack
    on top of any overrides already pinned on ``base``; an axis may
    re-sweep a pinned path (the axis value wins).
    """
    spec = MachineSpec.coerce(base, library=library)
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise MachineError(f"duplicate sweep axes in {names}")

    points: List[SweepPoint] = []
    for combo in itertools.product(*(axis.values for axis in axes)):
        coords = tuple(zip(names, combo))
        nprocs = spec.nprocs
        overrides: Dict[str, OverrideValue] = dict(spec.overrides)
        for name, value in coords:
            if name == NPROCS_AXIS:
                nprocs = int(value)
            else:
                overrides[name] = value
        machine = MachineSpec.coerce(spec, nprocs=nprocs, overrides=overrides)
        machine.build()  # validate primitive names / grids eagerly
        points.append(SweepPoint(coords=coords, machine=machine))
    return tuple(points)


@dataclass
class SweepResult:
    """Every outcome of a sweep, sliceable by point.

    ``outcomes`` is flat in submission order — one
    ``len(benchmarks) * len(keys)`` block per point — exactly as the
    engine returned them.  :meth:`study` reshapes one point's block into
    a :class:`~repro.engine.StudyResult` so the whole
    :mod:`repro.analysis.figures` surface works per swept cell.
    """

    axes: Tuple[SweepAxis, ...]
    points: Tuple[SweepPoint, ...]
    benchmarks: Tuple[str, ...]
    keys: Tuple[str, ...]
    outcomes: List[JobOutcome] = field(repr=False)
    #: which cache backend served the run (``CacheBackend.describe()``)
    cache_info: Optional[dict] = None

    @property
    def cells_per_point(self) -> int:
        return len(self.benchmarks) * len(self.keys)

    @property
    def cells(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(o.cached for o in self.outcomes)

    def point_outcomes(self, index: int) -> List[JobOutcome]:
        n = self.cells_per_point
        return self.outcomes[index * n : (index + 1) * n]

    def iter_points(self) -> Iterator[Tuple[SweepPoint, List[JobOutcome]]]:
        for i, point in enumerate(self.points):
            yield point, self.point_outcomes(i)

    def study(self, index: int) -> StudyResult:
        """One point's block as a figures-compatible study result."""
        block = self.point_outcomes(index)
        results: Dict[str, List[ExperimentResult]] = {
            b: [] for b in self.benchmarks
        }
        for outcome in block:
            results[outcome.job.benchmark].append(outcome.result)
        return StudyResult(results=results, outcomes=block)

    @property
    def telemetry(self) -> List[dict]:
        return [o.record for o in self.outcomes]

    def write_telemetry(self, path: Union[str, Path]) -> Path:
        """Persist the flat telemetry records (same envelope as
        :meth:`~repro.engine.StudyResult.write_telemetry`, readable with
        :func:`repro.load_telemetry`)."""
        path = Path(path)
        doc = {"schema": RECORD_SCHEMA, "records": self.telemetry}
        if self.cache_info is not None:
            doc["cache"] = self.cache_info
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        return path


def run_sweep(
    *,
    axes: Iterable[SweepAxis],
    benchmarks: Union[str, Iterable[str]] = BENCHMARKS,
    keys: Iterable[str] = EXPERIMENT_KEYS,
    machine: Union[MachineSpec, str, None] = None,
    library: Optional[str] = None,
    overrides: Optional[Mapping[str, OverrideValue]] = None,
    config_overrides: Optional[Mapping[str, ConfigOverride]] = None,
    mode: Union[ExecutionMode, str] = ExecutionMode.TIMING,
    fast: Optional[bool] = None,
    batched: Optional[bool] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
    cache_dir: Union[str, Path, None] = None,
    cache_backend: Optional[str] = None,
    cache_url: Optional[str] = None,
    dispatcher: Union[str, None, object] = None,
    telemetry: Union[str, Path, None] = None,
) -> SweepResult:
    """Run the benchmark x experiment matrix over every sweep point.

    Keyword-only, mirroring :func:`repro.run_study`; the extra knobs:

    axes:
        The swept parameters (:class:`SweepAxis` list); the grid is
        their cartesian product.
    overrides:
        Machine-parameter overrides pinned at *every* point (e.g. hold
        ``prim.*.per_byte_beyond`` high while sweeping the knee).
    machine:
        The base machine (name or spec) the variants derive from; its
        ``nprocs`` is the default when no ``nprocs`` axis is given.
    batched:
        Route each cell's variant jobs through the batched evaluator
        (:func:`repro.simulate_many`) instead of N engine jobs.
        ``None`` (default) auto-selects it whenever it applies: TIMING
        mode, no ``nprocs`` axis, no ``fast=False``, and more than one
        point.  ``True`` forces it (raising
        :class:`~repro.errors.MachineError` naming any blocker);
        ``False`` keeps the per-job path.  Results and cache records
        are bit-identical either way — the batched evaluator matches
        the scalar fast path per variant — so the two paths share one
        result cache.  ``jobs`` is ignored on the batched path.

    All cells go through one engine run: the on-disk result cache keys
    each variant by override content, so re-invoking a sweep (or growing
    one axis) only simulates the new points.
    """
    axes = tuple(axes)
    if not axes:
        raise MachineError("run_sweep needs at least one axis")
    if isinstance(benchmarks, str):
        benchmarks = (benchmarks,)
    benchmarks = tuple(benchmarks)
    keys = tuple(keys)

    base = MachineSpec.coerce(machine, library=library, overrides=overrides)
    points = expand_axes(axes, base)

    mode_value = mode.value if isinstance(mode, ExecutionMode) else str(mode)
    blockers = []
    if mode_value != ExecutionMode.TIMING.value:
        blockers.append(
            f"mode is {mode_value!r} (batched evaluation is TIMING-only)"
        )
    if fast is False:
        blockers.append("fast=False forces the interpreted walk")
    if any(axis.name == NPROCS_AXIS for axis in axes):
        blockers.append(
            "an nprocs axis changes the machine shape between points"
        )
    if batched is True and blockers:
        raise MachineError(
            "cannot run a batched sweep: " + "; ".join(blockers)
        )
    use_batched = (
        batched if batched is not None else not blockers and len(points) > 1
    )

    with obs.span(
        "sweep:run",
        axes=" ".join(a.describe() for a in axes),
        points=len(points),
        machine=base.name,
    ):
        matrix = []
        for point in points:
            matrix.extend(
                build_matrix(
                    benchmarks,
                    keys,
                    machine=point.machine,
                    config_overrides=config_overrides,
                    mode=mode,
                    fast=fast,
                )
            )
        obs.add("sweep.points", len(points))
        obs.add("sweep.cells", len(matrix))

        engine = ExperimentEngine(
            jobs=jobs,
            cache=cache,
            cache_dir=cache_dir,
            cache_backend=cache_backend,
            cache_url=cache_url,
            dispatcher=dispatcher,
        )
        if use_batched:
            obs.add("sweep.batched_cells", len(matrix))
            outcomes = run_jobs_batched(engine, matrix)
        else:
            outcomes = engine.run(matrix)
        obs.add("sweep.cache_hits", sum(o.cached for o in outcomes))

    result = SweepResult(
        axes=axes,
        points=points,
        benchmarks=benchmarks,
        keys=keys,
        outcomes=outcomes,
        cache_info=engine.cache.describe(),
    )
    if telemetry is not None:
        result.write_telemetry(telemetry)
    return result
