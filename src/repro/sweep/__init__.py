"""Declarative parameter sweeps over derived machine variants.

The paper measures two machines at fixed processor counts, so each of
its findings — the 4 KB combining knee, pipelining's latency
sensitivity, the SHMEM ``synch`` penalty — is a pair of data points.
This package turns them into curves: a :class:`SweepAxis` names one
swept parameter (``nprocs`` or any :mod:`repro.machine.variants` path)
and a list of values, :func:`expand_axes` takes the cartesian product
into validated :class:`SweepPoint`\\ s (each a derived
:class:`~repro.engine.MachineSpec` with a content-stable variant id),
and :func:`run_sweep` runs the full ``benchmark x experiment`` matrix
over every point through the experiment engine's existing job matrix —
one cached, parallel :meth:`~repro.engine.ExperimentEngine.run`, not a
new loop.

The scaling analysis over the results (per-optimization curves,
crossover detection, CSV/JSON emission) lives in
:mod:`repro.analysis.scaling`; the CLI front end is
``python -m repro sweep``.  See ``docs/SWEEPS.md``.
"""

from repro.sweep.axes import NPROCS_AXIS, SweepAxis, parse_axis
from repro.sweep.core import SweepPoint, SweepResult, expand_axes, run_sweep
from repro.sweep.refine import RefinedSweep, WinnerFlip, run_refined_sweep

__all__ = [
    "NPROCS_AXIS",
    "RefinedSweep",
    "SweepAxis",
    "SweepPoint",
    "SweepResult",
    "WinnerFlip",
    "expand_axes",
    "parse_axis",
    "run_refined_sweep",
    "run_sweep",
]
