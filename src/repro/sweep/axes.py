"""Sweep axes: one swept parameter and its values.

An axis is either the special ``nprocs`` axis (processor counts,
factored through :func:`~repro.machine.factories.square_ish_grid` when
the variant machine is built) or a machine-parameter path from
:mod:`repro.machine.variants` (``net.latency``, ``prim.*.knee_bytes``,
...).  Axis values are validated eagerly so a malformed sweep fails
before any job is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from repro.errors import MachineError
from repro.machine.variants import validate_override_path

__all__ = ["NPROCS_AXIS", "SweepAxis", "parse_axis"]

#: The processor-count axis name (swept through ``MachineSpec.nprocs``
#: rather than a parameter override).
NPROCS_AXIS = "nprocs"

AxisValue = Union[int, float]


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: an axis name and its ordered values."""

    name: str
    values: Tuple[AxisValue, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise MachineError(f"sweep axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))
        if len(set(self.values)) != len(self.values):
            raise MachineError(
                f"sweep axis {self.name!r} repeats a value: {self.values}"
            )
        if self.name == NPROCS_AXIS:
            coerced = []
            for v in self.values:
                if isinstance(v, bool) or (
                    not isinstance(v, int) and float(v) != int(v)
                ):
                    raise MachineError(
                        f"nprocs axis values must be integers, got {v!r}"
                    )
                v = int(v)
                if v < 1:
                    raise MachineError(
                        f"processor count must be positive, got {v}"
                    )
                coerced.append(v)
            object.__setattr__(self, "values", tuple(coerced))
        else:
            # value domains (non-negative, bandwidth > 0, integral byte
            # counts) are checked per value by normalize_overrides when
            # points are expanded; the path shape is checked here
            validate_override_path(self.name)

    def describe(self) -> str:
        return f"{self.name}=" + ",".join(f"{v:g}" for v in self.values)


def parse_axis(text: str) -> SweepAxis:
    """Parse a CLI axis spec, ``"name=v1,v2,..."``.

    Values parse as int when integral (``4`` or ``1e2``), float
    otherwise; domain validation happens in :class:`SweepAxis` and
    :func:`~repro.machine.variants.normalize_overrides`.
    """
    name, sep, rest = text.partition("=")
    name = name.strip()
    if not sep or not name:
        raise MachineError(
            f"malformed sweep axis {text!r} (expected name=v1,v2,...)"
        )
    values = []
    for piece in rest.split(","):
        piece = piece.strip()
        if not piece:
            raise MachineError(
                f"sweep axis {name!r} has an empty value in {rest!r}"
            )
        try:
            value: AxisValue = int(piece, 10)
        except ValueError:
            try:
                value = float(piece)
            except ValueError:
                raise MachineError(
                    f"sweep axis {name!r}: {piece!r} is not a number"
                ) from None
            if value == int(value) and abs(value) < 2**53:
                value = int(value)
        values.append(value)
    return SweepAxis(name=name, values=tuple(values))


def parse_axes(texts: Iterable[str]) -> Tuple[SweepAxis, ...]:
    """Parse several CLI axis specs, rejecting duplicate axis names."""
    axes = tuple(parse_axis(t) for t in texts)
    seen = set()
    for axis in axes:
        if axis.name in seen:
            raise MachineError(f"sweep axis {axis.name!r} given twice")
        seen.add(axis.name)
    return axes
