"""Factories for the paper's two machines (its Figure 3).

The constants below are *calibrated, not measured*: they are chosen so the
simulated machines preserve the relationships the paper reports —

* a 4 KB (512-double) knee in overhead vs. message size on both machines,
  past which combining stops paying (Figure 6);
* Paragon asynchronous NX no better than csend/crecv, callback NX worse;
* T3D SHMEM put ~10% cheaper in software overhead than PVM send/recv,
  but with heavyweight ``synch`` rendezvous at DR/DN;
* a much slower Paragon node (50 MHz i860 vs 150 MHz Alpha 21064).

Absolute simulated times are therefore in "model seconds" and only ratios
are meaningful — which is also how the paper plots its results (scaled to
baseline).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import MachineError
from repro.ironman.bindings import binding_for
from repro.machine.params import (
    ComputeParams,
    Machine,
    NetworkParams,
    PrimitiveCost,
    ReductionParams,
    SyncKind,
)

#: The knee: 512 doubles = 4096 bytes on both machines (paper, Section 3.2).
KNEE_BYTES = 4096


def square_ish_grid(nprocs: int) -> Tuple[int, int]:
    """Factor ``nprocs`` into the most square 2-D mesh (rows x cols with
    rows <= cols)."""
    if nprocs <= 0:
        raise MachineError(f"processor count must be positive, got {nprocs}")
    best = (1, nprocs)
    r = 1
    while r * r <= nprocs:
        if nprocs % r == 0:
            best = (r, nprocs // r)
        r += 1
    return best


def _paragon_primitives() -> Dict[str, PrimitiveCost]:
    # NX software overheads on the 50 MHz Paragon were notoriously large
    # (tens of microseconds per call).
    beyond = 11.0e-9  # ~ fixed/knee: combining beyond 4 KB is ~neutral
    return {
        "csend": PrimitiveCost(
            "csend", fixed=46.0e-6, knee_bytes=KNEE_BYTES, per_byte_beyond=beyond
        ),
        "crecv": PrimitiveCost(
            "crecv",
            fixed=40.0e-6,
            knee_bytes=KNEE_BYTES,
            per_byte_beyond=beyond,
            sync=SyncKind.WAIT_ARRIVAL,
        ),
        # asynchronous (co-processor) primitives: posting is not free, and
        # the waits add up to about the same total as csend/crecv
        "irecv": PrimitiveCost("irecv", fixed=24.0e-6),
        "isend": PrimitiveCost(
            "isend", fixed=46.0e-6, knee_bytes=KNEE_BYTES, per_byte_beyond=beyond
        ),
        "msgwait": PrimitiveCost(
            "msgwait", fixed=12.0e-6, sync=SyncKind.WAIT_ARRIVAL
        ),
        # callback (handler) primitives: extremely heavyweight
        "hprobe": PrimitiveCost("hprobe", fixed=22.0e-6),
        "hsend": PrimitiveCost(
            "hsend", fixed=68.0e-6, knee_bytes=KNEE_BYTES, per_byte_beyond=beyond
        ),
        "hrecv": PrimitiveCost(
            "hrecv",
            fixed=58.0e-6,
            knee_bytes=KNEE_BYTES,
            per_byte_beyond=beyond,
            sync=SyncKind.WAIT_ARRIVAL,
        ),
    }


def _t3d_primitives() -> Dict[str, PrimitiveCost]:
    # The T3D's vendor-optimized PVM was an order of magnitude lighter
    # than Paragon NX: per-call software costs in the 10-microsecond
    # class.
    beyond_pvm = 3.0e-9
    return {
        "pvm_send": PrimitiveCost(
            "pvm_send", fixed=12.0e-6, knee_bytes=KNEE_BYTES, per_byte_beyond=beyond_pvm
        ),
        "pvm_recv": PrimitiveCost(
            "pvm_recv",
            fixed=9.0e-6,
            knee_bytes=KNEE_BYTES,
            per_byte_beyond=beyond_pvm,
            sync=SyncKind.WAIT_ARRIVAL,
        ),
        # SHMEM: a cheap one-sided put, plus the prototype IRONMAN
        # implementation's "unnecessarily heavy-weight" synchronization
        "shmem_put": PrimitiveCost(
            "shmem_put",
            fixed=3.5e-6,
            knee_bytes=KNEE_BYTES,
            per_byte_beyond=2.0e-9,
            raw_wire=True,
        ),
        # The degradation the paper observes on inherently sequential
        # codes emerges from the synch semantics alone (the put's source
        # blocks until the destination's readiness flag lands), so no
        # polling surcharge is needed; the spread_penalty knob is kept at
        # zero for the ablation benchmarks to explore.
        "synch": PrimitiveCost(
            "synch",
            fixed=6.5e-6,
            sync=SyncKind.RENDEZVOUS,
            spread_penalty=0.0,
            spread_cap=25.0e-6,
        ),
    }


def paragon(nprocs: int = 2, library: str = "nx") -> Machine:
    """Build the Intel Paragon model (50 MHz i860 nodes, NX).

    ``library`` selects the IRONMAN binding: ``"nx"`` (csend/crecv),
    ``"nx_async"`` (isend/irecv + msgwait) or ``"nx_callback"``
    (hsend/hrecv).
    """
    if library not in ("nx", "nx_async", "nx_callback"):
        raise MachineError(
            f"the Paragon model supports nx / nx_async / nx_callback, "
            f"not {library!r}"
        )
    return Machine(
        name="Intel Paragon",
        clock_mhz=50.0,
        timer_granularity=100e-9,
        nprocs=nprocs,
        grid_shape=square_ish_grid(nprocs),
        library=library,
        binding=binding_for(library),
        primitives=_paragon_primitives(),
        network=NetworkParams(latency=6.0e-6, bandwidth=70.0e6),
        compute=ComputeParams(flop_time=60.0e-9),
        reduction=ReductionParams(stage_cost=55.0e-6),
    )


def t3d(nprocs: int = 64, library: str = "pvm") -> Machine:
    """Build the Cray T3D model (150 MHz Alpha 21064 nodes).

    ``library`` selects ``"pvm"`` (message passing) or ``"shmem"``
    (one-way communication through the prototype IRONMAN binding).
    """
    if library not in ("pvm", "shmem"):
        raise MachineError(
            f"the T3D model supports pvm / shmem, not {library!r}"
        )
    return Machine(
        name="Cray T3D",
        clock_mhz=150.0,
        timer_granularity=150e-9,
        nprocs=nprocs,
        grid_shape=square_ish_grid(nprocs),
        library=library,
        binding=binding_for(library),
        primitives=_t3d_primitives(),
        network=NetworkParams(latency=12.0e-6, bandwidth=120.0e6, raw_latency=2.0e-6),
        compute=ComputeParams(flop_time=25.0e-9),
        reduction=ReductionParams(stage_cost=14.0e-6),
    )


def machine_by_name(
    name: str, nprocs: Optional[int] = None, library: Optional[str] = None
) -> Machine:
    """Convenience lookup used by the CLI and the harness: ``"paragon"``
    or ``"t3d"`` with optional processor count and library override."""
    key = name.strip().lower()
    # `nprocs or default` would silently turn an invalid 0 into the
    # default count; pass it through so square_ish_grid rejects it
    if key == "paragon":
        return paragon(2 if nprocs is None else nprocs, library or "nx")
    if key == "t3d":
        return t3d(64 if nprocs is None else nprocs, library or "pvm")
    raise MachineError(f"unknown machine {name!r} (valid: paragon, t3d)")
