"""Derived machine variants for parameter sweeps.

The two calibrated machines (:func:`~repro.machine.factories.paragon`,
:func:`~repro.machine.factories.t3d`) fix every cost parameter at the
value that reproduces the paper's two data points.  A *variant* is the
same machine with a small set of named parameters replaced — latency
halved, the combining knee moved, a primitive's overhead scaled — so a
sweep can turn each of the paper's findings into a curve.

Overrides are flat ``path -> value`` mappings over a closed set of
sweepable fields:

==============================  =============================================
path                            field
==============================  =============================================
``net.latency``                 :class:`~repro.machine.params.NetworkParams`
``net.bandwidth``               (message-passing wire)
``net.raw_latency``             one-sided wire latency (T3D SHMEM)
``compute.flop_time``           :class:`~repro.machine.params.ComputeParams`
``compute.loop_overhead``
``reduction.stage_cost``        :class:`~repro.machine.params.ReductionParams`
``prim.<name>.<field>``         one :class:`~repro.machine.params.PrimitiveCost`
``prim.*.<field>``              every primitive of the machine
==============================  =============================================

where ``<field>`` is one of ``fixed``, ``per_byte``, ``knee_bytes``,
``per_byte_beyond``, ``spread_penalty``, ``spread_cap``.

:func:`apply_overrides` derives a new frozen :class:`Machine` through
``dataclasses.replace`` — the base machine is never mutated — and
:func:`variant_id` gives every override set a content-stable identifier
that flows into the engine's job fingerprints, so swept cells cache
independently of the calibrated machines and of each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MachineError
from repro.machine.params import Machine, PrimitiveCost, SyncKind

__all__ = [
    "NETWORK_FIELDS",
    "PRIMITIVE_FIELDS",
    "SCALAR_PATHS",
    "PrimColumns",
    "VariantMatrix",
    "apply_overrides",
    "clear_pack_cache",
    "default_bounds",
    "describe_overrides",
    "normalize_overrides",
    "override_value",
    "pack_cache_info",
    "pack_variant_specs",
    "pack_variants",
    "validate_override_path",
    "variant_id",
]

OverrideValue = Union[int, float]

#: Sweepable fields of :class:`NetworkParams`.
NETWORK_FIELDS = ("latency", "bandwidth", "raw_latency")

#: Sweepable fields of :class:`PrimitiveCost`.
PRIMITIVE_FIELDS = (
    "fixed",
    "per_byte",
    "knee_bytes",
    "per_byte_beyond",
    "spread_penalty",
    "spread_cap",
)

#: Non-primitive paths and the (section, field) they resolve to.
SCALAR_PATHS: Dict[str, Tuple[str, str]] = {
    **{f"net.{f}": ("network", f) for f in NETWORK_FIELDS},
    "compute.flop_time": ("compute", "flop_time"),
    "compute.loop_overhead": ("compute", "loop_overhead"),
    "reduction.stage_cost": ("reduction", "stage_cost"),
}

#: Fields that must stay strictly positive for the cost model to make
#: sense (a zero-bandwidth wire divides by zero).
_STRICTLY_POSITIVE = {"bandwidth"}

#: Fields holding byte counts — coerced to int, must be integral.
_INTEGRAL = {"knee_bytes"}


def _valid_paths_hint() -> str:
    return (
        "valid paths: "
        + ", ".join(sorted(SCALAR_PATHS))
        + ", prim.<name|*>.{"
        + ",".join(PRIMITIVE_FIELDS)
        + "}"
    )


def validate_override_path(path: str) -> None:
    """Check that ``path`` names a sweepable parameter (shape only —
    primitive names are checked against a concrete machine when the
    override is applied).  Raises :class:`MachineError` otherwise."""
    if path in SCALAR_PATHS:
        return
    parts = path.split(".")
    if len(parts) == 3 and parts[0] == "prim":
        if parts[2] in PRIMITIVE_FIELDS:
            return
        raise MachineError(
            f"unknown primitive-cost field {parts[2]!r} in override "
            f"{path!r}; {_valid_paths_hint()}"
        )
    raise MachineError(f"unknown override path {path!r}; {_valid_paths_hint()}")


def _check_value(path: str, field: str, value: OverrideValue) -> OverrideValue:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MachineError(
            f"override {path} must be a number, got {value!r}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise MachineError(f"override {path} must be finite, got {value!r}")
    if value < 0:
        raise MachineError(
            f"override {path} must be non-negative, got {value!r}"
        )
    if field in _STRICTLY_POSITIVE and value == 0:
        raise MachineError(f"override {path} must be positive, got {value!r}")
    if field in _INTEGRAL:
        if value != int(value):
            raise MachineError(
                f"override {path} must be an integral byte count, "
                f"got {value!r}"
            )
        return int(value)
    return value


def normalize_overrides(
    overrides: Mapping[str, OverrideValue],
) -> Tuple[Tuple[str, OverrideValue], ...]:
    """Validate paths/values and return the canonical (sorted, typed)
    override tuple — the hashable form :class:`~repro.engine.MachineSpec`
    carries and :func:`variant_id` hashes."""
    out = []
    for path in sorted(overrides):
        validate_override_path(path)
        field = path.rsplit(".", 1)[1]
        out.append((path, _check_value(path, field, overrides[path])))
    return tuple(out)


def variant_id(overrides: Mapping[str, OverrideValue]) -> str:
    """Content-stable identifier of an override set.

    ``"base"`` for no overrides; otherwise a 12-hex-digit SHA-256 prefix
    of the canonical JSON form, independent of mapping order.
    """
    items = normalize_overrides(overrides)
    if not items:
        return "base"
    canonical = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def describe_overrides(overrides: Mapping[str, OverrideValue]) -> str:
    """Human-readable ``path=value`` list in canonical order."""
    items = normalize_overrides(overrides)
    if not items:
        return "base"
    return ",".join(f"{path}={value:g}" for path, value in items)


def apply_overrides(
    base: Machine, overrides: Mapping[str, OverrideValue]
) -> Machine:
    """Derive a new :class:`Machine` with ``overrides`` applied.

    Purely functional: every touched dataclass is rebuilt through
    ``dataclasses.replace`` and the base machine (including its
    primitives mapping) is left untouched.  Unknown paths, unknown
    primitive names, and out-of-domain values raise
    :class:`MachineError`.
    """
    items = normalize_overrides(overrides)
    if not items:
        return base

    section_fields: Dict[str, Dict[str, OverrideValue]] = {}
    prim_fields: Dict[str, Dict[str, OverrideValue]] = {}
    for path, value in items:
        if path in SCALAR_PATHS:
            section, field = SCALAR_PATHS[path]
            section_fields.setdefault(section, {})[field] = value
        else:
            _, prim_name, field = path.split(".")
            prim_fields.setdefault(prim_name, {})[field] = value

    changes: Dict[str, object] = {}
    for section, fields in section_fields.items():
        changes[section] = dataclasses.replace(
            getattr(base, section), **fields
        )

    if prim_fields:
        star = prim_fields.pop("*", {})
        for prim_name in prim_fields:
            if prim_name not in base.primitives:
                raise MachineError(
                    f"machine {base.name!r} has no primitive {prim_name!r} "
                    f"to override (has: {', '.join(sorted(base.primitives))})"
                )
        primitives: Dict[str, PrimitiveCost] = {}
        for name, prim in base.primitives.items():
            fields = {**star, **prim_fields.get(name, {})}
            primitives[name] = (
                dataclasses.replace(prim, **fields) if fields else prim
            )
        changes["primitives"] = primitives

    return dataclasses.replace(base, **changes)


# ---------------------------------------------------------------------------
# variant cost-matrix packing (the batched evaluator's parameter layout)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, eq=False)
class PrimColumns:
    """One primitive's cost fields across every variant.

    Each array has shape ``(V,)`` — one row per variant, in
    :func:`pack_variants` order.  The structural fields (``sync``,
    ``raw_wire``) are required to agree across variants: they change the
    *shape* of the dispatch, not its coefficients, so a batch can't mix
    them.
    """

    name: str
    sync: SyncKind
    raw_wire: bool
    fixed: np.ndarray
    per_byte: np.ndarray
    knee_bytes: np.ndarray
    per_byte_beyond: np.ndarray
    spread_penalty: np.ndarray
    spread_cap: np.ndarray

    def sw_matrix(self, nbytes: np.ndarray) -> np.ndarray:
        """``(V, M)`` software cost of each message under each variant —
        the batched :meth:`~repro.machine.params.PrimitiveCost.sw`, with
        the same operation order so every entry is bit-identical to the
        scalar call."""
        extra = np.maximum(0, nbytes[None, :] - self.knee_bytes[:, None])
        return (
            self.fixed[:, None]
            + self.per_byte[:, None] * nbytes[None, :]
            + self.per_byte_beyond[:, None] * extra
        )


@dataclasses.dataclass(frozen=True, eq=False)
class VariantMatrix:
    """A stack of cost-only machine variants as ``(V,)`` parameter
    columns — the input layout of :func:`repro.simulate_many`.

    Every variant must share the base machine's *shape*: name, processor
    count, grid, library, binding, primitive set, and each primitive's
    ``sync`` / ``raw_wire`` flags.  Only the numeric cost coefficients
    may differ.
    """

    machines: Tuple[Machine, ...]
    flop_time: np.ndarray
    loop_overhead: np.ndarray
    net_latency: np.ndarray
    net_raw: np.ndarray
    net_bandwidth: np.ndarray
    #: full reduction-tree time at the machine's nprocs, per variant
    reduction_time: np.ndarray
    prims: Dict[str, PrimColumns]

    @property
    def base(self) -> Machine:
        return self.machines[0]

    @property
    def nvariants(self) -> int:
        return len(self.machines)


def _require(cond: bool, what: str, index: int) -> None:
    if not cond:
        raise MachineError(
            f"cannot pack variants: machine #{index} differs from the "
            f"base in {what} — batched evaluation needs cost-only "
            "variants (same name, nprocs, grid, library, binding, and "
            "primitive structure)"
        )


def pack_variants(machines: Iterable[Machine]) -> VariantMatrix:
    """Stack cost-only variants of one machine into parameter columns.

    The first machine is the *base*; every other machine must be a
    cost-only variant of it (same shape, see :class:`VariantMatrix`).
    Raises :class:`MachineError` on any structural difference.
    """
    machines = tuple(machines)
    if not machines:
        raise MachineError("pack_variants needs at least one machine")
    base = machines[0]
    for i, m in enumerate(machines[1:], start=1):
        _require(m.name == base.name, "name", i)
        _require(m.nprocs == base.nprocs, "nprocs", i)
        _require(m.grid_shape == base.grid_shape, "grid_shape", i)
        _require(m.library == base.library, "library", i)
        _require(m.binding.as_rows() == base.binding.as_rows(), "binding", i)
        _require(
            set(m.primitives) == set(base.primitives), "primitive set", i
        )

    def column(values, dtype=np.float64):
        return np.array(values, dtype=dtype)

    prims: Dict[str, PrimColumns] = {}
    for name in sorted(set(base.primitives) | {"noop"}):
        cols = [m.primitive(name) for m in machines]
        head = cols[0]
        for i, p in enumerate(cols[1:], start=1):
            _require(p.sync is head.sync, f"prim.{name}.sync", i)
            _require(p.raw_wire == head.raw_wire, f"prim.{name}.raw_wire", i)
        prims[name] = PrimColumns(
            name=name,
            sync=head.sync,
            raw_wire=head.raw_wire,
            fixed=column([p.fixed for p in cols]),
            per_byte=column([p.per_byte for p in cols]),
            knee_bytes=column([p.knee_bytes for p in cols], dtype=np.int64),
            per_byte_beyond=column([p.per_byte_beyond for p in cols]),
            spread_penalty=column([p.spread_penalty for p in cols]),
            spread_cap=column([p.spread_cap for p in cols]),
        )

    return VariantMatrix(
        machines=machines,
        flop_time=column([m.compute.flop_time for m in machines]),
        loop_overhead=column([m.compute.loop_overhead for m in machines]),
        net_latency=column([m.network.latency for m in machines]),
        net_raw=column([m.network.raw for m in machines]),
        net_bandwidth=column([m.network.bandwidth for m in machines]),
        reduction_time=column(
            [m.reduction.time(m.nprocs) for m in machines]
        ),
        prims=prims,
    )


#: sized above any realistic sweep's distinct (library x variant-list)
#: combinations, mirroring the TransferPlan LRU from the fast path
_PACK_CACHE_SIZE = 64

OverrideItems = Tuple[Tuple[str, OverrideValue], ...]


@lru_cache(maxsize=_PACK_CACHE_SIZE)
def _pack_specs_cached(
    name: str,
    nprocs: int,
    library: Optional[str],
    overrides_list: Tuple[OverrideItems, ...],
) -> VariantMatrix:
    from repro.machine.factories import machine_by_name

    base = machine_by_name(name, nprocs, library)
    machines = [apply_overrides(base, dict(items)) for items in overrides_list]
    return pack_variants(machines)


def pack_variant_specs(
    name: str,
    nprocs: int,
    library: Optional[str],
    overrides_list: Sequence[Mapping[str, OverrideValue]],
) -> VariantMatrix:
    """A :class:`VariantMatrix` for a list of override sets of one named
    machine, memoized by content.

    A sweep's ``benchmark x experiment`` cells all share one variant
    list, so the cost-tensor packing (building every derived machine and
    stacking its parameter columns) is paid once per
    ``(machine, nprocs, library, variant-list)`` — not once per cell —
    through a process-wide LRU keyed by the canonical override tuples.
    """
    key = tuple(
        items
        if isinstance(items, tuple)
        else normalize_overrides(dict(items))
        for items in overrides_list
    )
    return _pack_specs_cached(name, nprocs, library, key)


def pack_cache_info():
    """The packing LRU's ``functools`` cache statistics."""
    return _pack_specs_cached.cache_info()


def clear_pack_cache() -> None:
    """Drop every memoized :func:`pack_variant_specs` matrix."""
    _pack_specs_cached.cache_clear()


# ---------------------------------------------------------------------------
# calibration targets: reading parameters back out, and default bounds
# ---------------------------------------------------------------------------


def override_value(machine: Machine, path: str) -> OverrideValue:
    """The current value of an override path on a concrete machine.

    ``prim.*.<field>`` reads the *largest* value across the machine's
    primitives (the conservative anchor for a bound that must contain
    every primitive's current value).
    """
    validate_override_path(path)
    if path in SCALAR_PATHS:
        section, field = SCALAR_PATHS[path]
        value = getattr(getattr(machine, section), field)
        if value is None:  # net.raw_latency unset falls back to latency
            value = machine.network.latency
        return value
    _, prim_name, field = path.split(".")
    if prim_name == "*":
        values = [getattr(p, field) for p in machine.primitives.values()]
        if not values:
            raise MachineError(f"machine {machine.name!r} has no primitives")
        return max(values)
    prim = machine.primitive(prim_name)
    return getattr(prim, field)


#: Per-field fallback upper bounds for parameters whose calibrated value
#: is zero (a zero base gives a degenerate multiplicative bracket).
_FALLBACK_HI: Dict[str, float] = {
    "fixed": 1e-3,
    "per_byte": 1e-7,
    "knee_bytes": 65536,
    "per_byte_beyond": 1e-6,
    "spread_penalty": 4.0,
    "spread_cap": 1e-3,
    "latency": 1e-3,
    "raw_latency": 1e-4,
    "bandwidth": 1e9,
    "flop_time": 1e-6,
    "loop_overhead": 1e-4,
    "stage_cost": 1e-3,
}


def default_bounds(
    machine: Machine, path: str, span: float = 16.0
) -> Tuple[float, float]:
    """A calibration search bracket for one override path.

    Centered multiplicatively on the machine's current value —
    ``(value / span, value * span)`` — so a fit started from a
    calibrated machine brackets plausible re-measurements.  Zero-valued
    parameters get ``(0, fallback)`` from a per-field table; bandwidth
    stays strictly positive.
    """
    if span <= 1.0:
        raise MachineError(f"bounds span must exceed 1, got {span!r}")
    field = path.rsplit(".", 1)[1]
    base = float(override_value(machine, path))
    if base > 0.0:
        lo, hi = base / span, base * span
    else:
        lo, hi = 0.0, _FALLBACK_HI[field]
    if field in _STRICTLY_POSITIVE and lo == 0.0:
        lo = hi / span**2
    if field in _INTEGRAL:
        lo, hi = float(int(lo)), float(max(int(math.ceil(hi)), int(lo) + 1))
    return lo, hi
