"""Derived machine variants for parameter sweeps.

The two calibrated machines (:func:`~repro.machine.factories.paragon`,
:func:`~repro.machine.factories.t3d`) fix every cost parameter at the
value that reproduces the paper's two data points.  A *variant* is the
same machine with a small set of named parameters replaced — latency
halved, the combining knee moved, a primitive's overhead scaled — so a
sweep can turn each of the paper's findings into a curve.

Overrides are flat ``path -> value`` mappings over a closed set of
sweepable fields:

==============================  =============================================
path                            field
==============================  =============================================
``net.latency``                 :class:`~repro.machine.params.NetworkParams`
``net.bandwidth``               (message-passing wire)
``net.raw_latency``             one-sided wire latency (T3D SHMEM)
``compute.flop_time``           :class:`~repro.machine.params.ComputeParams`
``compute.loop_overhead``
``reduction.stage_cost``        :class:`~repro.machine.params.ReductionParams`
``prim.<name>.<field>``         one :class:`~repro.machine.params.PrimitiveCost`
``prim.*.<field>``              every primitive of the machine
==============================  =============================================

where ``<field>`` is one of ``fixed``, ``per_byte``, ``knee_bytes``,
``per_byte_beyond``, ``spread_penalty``, ``spread_cap``.

:func:`apply_overrides` derives a new frozen :class:`Machine` through
``dataclasses.replace`` — the base machine is never mutated — and
:func:`variant_id` gives every override set a content-stable identifier
that flows into the engine's job fingerprints, so swept cells cache
independently of the calibrated machines and of each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Dict, Mapping, Tuple, Union

from repro.errors import MachineError
from repro.machine.params import Machine, PrimitiveCost

__all__ = [
    "NETWORK_FIELDS",
    "PRIMITIVE_FIELDS",
    "SCALAR_PATHS",
    "apply_overrides",
    "describe_overrides",
    "normalize_overrides",
    "validate_override_path",
    "variant_id",
]

OverrideValue = Union[int, float]

#: Sweepable fields of :class:`NetworkParams`.
NETWORK_FIELDS = ("latency", "bandwidth", "raw_latency")

#: Sweepable fields of :class:`PrimitiveCost`.
PRIMITIVE_FIELDS = (
    "fixed",
    "per_byte",
    "knee_bytes",
    "per_byte_beyond",
    "spread_penalty",
    "spread_cap",
)

#: Non-primitive paths and the (section, field) they resolve to.
SCALAR_PATHS: Dict[str, Tuple[str, str]] = {
    **{f"net.{f}": ("network", f) for f in NETWORK_FIELDS},
    "compute.flop_time": ("compute", "flop_time"),
    "compute.loop_overhead": ("compute", "loop_overhead"),
    "reduction.stage_cost": ("reduction", "stage_cost"),
}

#: Fields that must stay strictly positive for the cost model to make
#: sense (a zero-bandwidth wire divides by zero).
_STRICTLY_POSITIVE = {"bandwidth"}

#: Fields holding byte counts — coerced to int, must be integral.
_INTEGRAL = {"knee_bytes"}


def _valid_paths_hint() -> str:
    return (
        "valid paths: "
        + ", ".join(sorted(SCALAR_PATHS))
        + ", prim.<name|*>.{"
        + ",".join(PRIMITIVE_FIELDS)
        + "}"
    )


def validate_override_path(path: str) -> None:
    """Check that ``path`` names a sweepable parameter (shape only —
    primitive names are checked against a concrete machine when the
    override is applied).  Raises :class:`MachineError` otherwise."""
    if path in SCALAR_PATHS:
        return
    parts = path.split(".")
    if len(parts) == 3 and parts[0] == "prim":
        if parts[2] in PRIMITIVE_FIELDS:
            return
        raise MachineError(
            f"unknown primitive-cost field {parts[2]!r} in override "
            f"{path!r}; {_valid_paths_hint()}"
        )
    raise MachineError(f"unknown override path {path!r}; {_valid_paths_hint()}")


def _check_value(path: str, field: str, value: OverrideValue) -> OverrideValue:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MachineError(
            f"override {path} must be a number, got {value!r}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise MachineError(f"override {path} must be finite, got {value!r}")
    if value < 0:
        raise MachineError(
            f"override {path} must be non-negative, got {value!r}"
        )
    if field in _STRICTLY_POSITIVE and value == 0:
        raise MachineError(f"override {path} must be positive, got {value!r}")
    if field in _INTEGRAL:
        if value != int(value):
            raise MachineError(
                f"override {path} must be an integral byte count, "
                f"got {value!r}"
            )
        return int(value)
    return value


def normalize_overrides(
    overrides: Mapping[str, OverrideValue],
) -> Tuple[Tuple[str, OverrideValue], ...]:
    """Validate paths/values and return the canonical (sorted, typed)
    override tuple — the hashable form :class:`~repro.engine.MachineSpec`
    carries and :func:`variant_id` hashes."""
    out = []
    for path in sorted(overrides):
        validate_override_path(path)
        field = path.rsplit(".", 1)[1]
        out.append((path, _check_value(path, field, overrides[path])))
    return tuple(out)


def variant_id(overrides: Mapping[str, OverrideValue]) -> str:
    """Content-stable identifier of an override set.

    ``"base"`` for no overrides; otherwise a 12-hex-digit SHA-256 prefix
    of the canonical JSON form, independent of mapping order.
    """
    items = normalize_overrides(overrides)
    if not items:
        return "base"
    canonical = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def describe_overrides(overrides: Mapping[str, OverrideValue]) -> str:
    """Human-readable ``path=value`` list in canonical order."""
    items = normalize_overrides(overrides)
    if not items:
        return "base"
    return ",".join(f"{path}={value:g}" for path, value in items)


def apply_overrides(
    base: Machine, overrides: Mapping[str, OverrideValue]
) -> Machine:
    """Derive a new :class:`Machine` with ``overrides`` applied.

    Purely functional: every touched dataclass is rebuilt through
    ``dataclasses.replace`` and the base machine (including its
    primitives mapping) is left untouched.  Unknown paths, unknown
    primitive names, and out-of-domain values raise
    :class:`MachineError`.
    """
    items = normalize_overrides(overrides)
    if not items:
        return base

    section_fields: Dict[str, Dict[str, OverrideValue]] = {}
    prim_fields: Dict[str, Dict[str, OverrideValue]] = {}
    for path, value in items:
        if path in SCALAR_PATHS:
            section, field = SCALAR_PATHS[path]
            section_fields.setdefault(section, {})[field] = value
        else:
            _, prim_name, field = path.split(".")
            prim_fields.setdefault(prim_name, {})[field] = value

    changes: Dict[str, object] = {}
    for section, fields in section_fields.items():
        changes[section] = dataclasses.replace(
            getattr(base, section), **fields
        )

    if prim_fields:
        star = prim_fields.pop("*", {})
        for prim_name in prim_fields:
            if prim_name not in base.primitives:
                raise MachineError(
                    f"machine {base.name!r} has no primitive {prim_name!r} "
                    f"to override (has: {', '.join(sorted(base.primitives))})"
                )
        primitives: Dict[str, PrimitiveCost] = {}
        for name, prim in base.primitives.items():
            fields = {**star, **prim_fields.get(name, {})}
            primitives[name] = (
                dataclasses.replace(prim, **fields) if fields else prim
            )
        changes["primitives"] = primitives

    return dataclasses.replace(base, **changes)
