"""Simulated parallel machines.

The paper runs on an Intel Paragon and a Cray T3D; neither exists here,
so this package provides cost-model machines that preserve the properties
the paper's results depend on:

* per-primitive *software overhead* as a function of message size, flat up
  to a knee (~4 KB = 512 doubles) and rising linearly past it (Figure 6);
* NX asynchronous primitives on the Paragon that are no cheaper
  (isend/irecv) or more expensive (hsend/hrecv) than csend/crecv;
* T3D SHMEM ``shmem_put`` with ~10% less software overhead than PVM
  send/receive, but bound to a heavyweight pairwise ``synch`` for DR/DN
  (the paper's prototype limitation);
* a network with latency and bandwidth, so pipelined transfers overlap
  with computation;
* a compute rate, so statement execution costs scale with local block
  size.

:func:`~repro.machine.factories.paragon` and
:func:`~repro.machine.factories.t3d` build the two machines of the
paper's Figure 3.
"""

from repro.machine.params import (
    ComputeParams,
    Machine,
    NetworkParams,
    PrimitiveCost,
    ReductionParams,
)
from repro.machine.factories import paragon, square_ish_grid, t3d, machine_by_name
from repro.machine.variants import (
    PrimColumns,
    VariantMatrix,
    apply_overrides,
    clear_pack_cache,
    default_bounds,
    describe_overrides,
    normalize_overrides,
    override_value,
    pack_cache_info,
    pack_variant_specs,
    pack_variants,
    validate_override_path,
    variant_id,
)

__all__ = [
    "Machine",
    "PrimitiveCost",
    "NetworkParams",
    "ComputeParams",
    "ReductionParams",
    "paragon",
    "t3d",
    "machine_by_name",
    "square_ish_grid",
    "apply_overrides",
    "clear_pack_cache",
    "default_bounds",
    "describe_overrides",
    "normalize_overrides",
    "override_value",
    "pack_cache_info",
    "pack_variants",
    "pack_variant_specs",
    "PrimColumns",
    "VariantMatrix",
    "validate_override_path",
    "variant_id",
]
