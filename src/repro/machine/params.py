"""Machine parameter models.

All times are seconds, all sizes bytes.  The central object is
:class:`PrimitiveCost`, the software-overhead model of one communication
primitive:

``sw(n) = fixed + per_byte * n + max(0, n - knee_bytes) * per_byte_beyond``

With ``per_byte = 0`` this is flat up to the knee and linear beyond — the
shape the paper measures in Figure 6.  Setting ``per_byte_beyond`` near
``fixed / knee_bytes`` makes combining two knee-sized messages roughly
cost-neutral, reproducing the paper's finding that combining helps up to
512 doubles (4 KB) and not beyond.

Primitives also carry a :class:`SyncKind` telling the timing engine what
the call *waits for*; costs alone don't capture rendezvous semantics.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import MachineError
from repro.ironman.bindings import Binding


class SyncKind(enum.Enum):
    """What a primitive synchronizes with, beyond charging its own cost."""

    #: Charges cost only (send initiation, probe, posting a receive).
    LOCAL = "local"
    #: Blocks until the matching message has arrived (crecv, pvm_recv,
    #: msgwait at DN).
    WAIT_ARRIVAL = "wait-arrival"
    #: Blocks until this rank's own outstanding sends are complete
    #: (msgwait at SV).
    WAIT_SEND = "wait-send"
    #: Pairwise neighbour rendezvous: the caller synchronizes with its
    #: transfer partners (T3D SHMEM ``synch`` — the heavyweight prototype
    #: synchronization the paper describes).
    RENDEZVOUS = "rendezvous"


@dataclass(frozen=True)
class PrimitiveCost:
    """Software-overhead model for one primitive.

    ``spread_penalty`` / ``spread_cap`` apply to RENDEZVOUS primitives
    only: a late-arriving participant pays
    ``spread_penalty * min(lateness, spread_cap)`` extra, where lateness
    is how long its earliest partner waited.  This models the prototype
    SHMEM ``synch`` the paper describes as "unnecessarily heavy-weight":
    an early partner polls by writing/reading flags in the late partner's
    memory, stealing cycles from the party that is still computing (the
    cap bounds the interference — polling only overlaps the tail of the
    late side's in-progress work).  In balanced code the spread is ~0 and
    the term vanishes; in inherently sequential sections it throttles the
    wavefront — the behaviour behind the paper's TOMCATV/SP degradation
    under ``pl with shmem``.
    """

    name: str
    fixed: float
    per_byte: float = 0.0
    knee_bytes: int = 4096
    per_byte_beyond: float = 0.0
    sync: SyncKind = SyncKind.LOCAL
    spread_penalty: float = 0.0
    spread_cap: float = 25.0e-6
    #: one-sided primitives ride the raw remote-access wire, not the
    #: message-passing transit path
    raw_wire: bool = False

    def sw(self, nbytes: int) -> float:
        """Software overhead of one call moving ``nbytes``."""
        extra = max(0, nbytes - self.knee_bytes)
        return self.fixed + self.per_byte * nbytes + self.per_byte_beyond * extra


@dataclass(frozen=True)
class NetworkParams:
    """Wire model: a message of ``n`` bytes injected at time ``t`` arrives
    at ``t + latency + n / bandwidth``.

    ``latency`` is the end-to-end transit of a *message-passing* message
    (including library-side staging); ``raw_latency`` is the bare remote
    memory access latency that one-sided operations (puts, readiness
    flags) ride.  On the T3D the two differ by an order of magnitude.
    """

    latency: float
    bandwidth: float  # bytes / second
    raw_latency: Optional[float] = None

    @property
    def raw(self) -> float:
        return self.raw_latency if self.raw_latency is not None else self.latency

    def transfer_time(self, nbytes: int, raw_wire: bool = False) -> float:
        lat = self.raw if raw_wire else self.latency
        return lat + nbytes / self.bandwidth


@dataclass(frozen=True)
class ComputeParams:
    """Node compute model: an array statement with ``f`` flops per element
    over ``e`` local elements costs ``f * e * flop_time`` plus a fixed
    per-statement loop overhead."""

    flop_time: float
    loop_overhead: float = 1.0e-6

    def stmt_time(self, flops_per_element: int, elements: int) -> float:
        return self.loop_overhead + flops_per_element * elements * self.flop_time


@dataclass(frozen=True)
class ReductionParams:
    """Collective model: a global reduction (combine + broadcast) over P
    processors costs ``2 * ceil(log2 P) * stage_cost`` after synchronizing
    all participants."""

    stage_cost: float

    def time(self, nprocs: int) -> float:
        if nprocs <= 1:
            return self.stage_cost
        return 2.0 * math.ceil(math.log2(nprocs)) * self.stage_cost


@dataclass(frozen=True)
class Machine:
    """A fully parameterized simulated machine.

    Attributes
    ----------
    name, clock_mhz, timer_granularity:
        Descriptive (the paper's Figure 3 rows).
    nprocs, grid_shape:
        Processor count and its 2-D virtual mesh factorization.
    library, binding:
        The communication library and its IRONMAN binding.
    primitives:
        Primitive name -> cost model; must cover every primitive the
        binding names (``noop`` is implicit).
    network, compute, reduction:
        Wire, node-compute, and collective models.
    """

    name: str
    clock_mhz: float
    timer_granularity: float
    nprocs: int
    grid_shape: Tuple[int, int]
    library: str
    binding: Binding
    primitives: Dict[str, PrimitiveCost]
    network: NetworkParams
    compute: ComputeParams
    reduction: ReductionParams

    def __post_init__(self) -> None:
        pr, pc = self.grid_shape
        if pr * pc != self.nprocs or pr <= 0 or pc <= 0:
            raise MachineError(
                f"grid {self.grid_shape} does not tile {self.nprocs} processors"
            )
        for kind_name, prim in self.binding.as_rows():
            if prim != "noop" and prim not in self.primitives:
                raise MachineError(
                    f"binding maps {kind_name} to {prim!r} but machine "
                    f"{self.name!r} has no cost model for it"
                )

    def primitive(self, name: str) -> PrimitiveCost:
        if name == "noop":
            return _NOOP
        try:
            return self.primitives[name]
        except KeyError:
            raise MachineError(
                f"machine {self.name!r} has no primitive {name!r}"
            ) from None

    def exposed_overhead(self, nbytes: int) -> float:
        """Software overhead of one complete transfer of ``nbytes`` when
        the wire time is fully hidden by computation — the quantity the
        paper's Figure 6 synthetic benchmark measures (sum of the four
        IRONMAN calls' software costs)."""
        total = 0.0
        for _, prim_name in self.binding.as_rows():
            prim = self.primitive(prim_name)
            # per-byte costs apply to the calls that touch the data
            n = nbytes if prim_name in _DATA_TOUCHING else 0
            total += prim.sw(n)
        return total

    def describe(self) -> str:
        pr, pc = self.grid_shape
        return (
            f"{self.name} ({self.clock_mhz:.0f} MHz), {self.nprocs} procs "
            f"as {pr}x{pc} mesh, {self.library} "
            f"(timer ~{self.timer_granularity * 1e9:.0f} ns)"
        )


#: Primitives whose software cost scales with message size (they copy or
#: inject the payload); synchronization and wait primitives are size-free.
_DATA_TOUCHING = {
    "csend",
    "crecv",
    "isend",
    "hsend",
    "hrecv",
    "pvm_send",
    "pvm_recv",
    "shmem_put",
}

_NOOP = PrimitiveCost("noop", fixed=0.0)
