"""Red-black Gauss-Seidel — checkerboard relaxation, in ZL.

Gauss-Seidel relaxation parallelizes by colouring the grid like a
checkerboard: all *red* points (``index1 + index2`` even) update from
their four black neighbours, then all *black* points update from the
freshly-computed red values.  ZL has no element indexing or strided
regions, so the colouring is expressed with a parity *mask* computed
once in ``init()``:

    ``RED = (1 + cos(pi * (index1 + index2))) / 2``

which is exactly 1 on red points and 0 on black ones
(``cos(pi * k) = (-1)^k``).  Each half-sweep is then a masked
whole-array update, ``A := A + MASK * (stencil - A)`` — points of the
other colour add zero.

The relaxation is *variable-coefficient* (``C`` holds a frozen
coefficient field, as in any non-constant-diffusion problem), which
gives the optimizer the two structures Jacobi lacks: each half-sweep
reads ``C@d`` and ``A@d`` for the same direction *in the same
statement* — pairs to the same neighbour that combining merges under
both heuristics — and the black half-sweep re-reads every ``C@d`` the
red half just fetched, with no intervening write to ``C``, so
redundancy removal deletes them while correctly keeping the ``A@d``
re-reads that the red write killed.  RBGS is the corpus's
*combining-and-selective-rr* kernel, between Jacobi's single-opt
profile and the paper's whole programs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"n": 64, "niters": 60}

#: Reduced problem for tests.
SMALL_CONFIG: Dict[str, int] = {"n": 12, "niters": 2}

SOURCE = """
program rbgs;

config n      : integer = 64;
config niters : integer = 60;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction north = [-1,  0];
direction south = [ 1,  0];
direction east  = [ 0,  1];
direction west  = [ 0, -1];

var A, C, RED, BLACK : [R] double;
var err              : double;

procedure init();
begin
  -- parity masks: cos(pi*k) = (-1)^k, so RED is 1 where
  -- index1+index2 is even and 0 where it is odd
  [R] RED   := 0.5 * (1.0 + cos(3.14159265358979 * (index1 + index2)));
  [R] BLACK := 1.0 - RED;
  [R] A := sin(index1 * 0.2) * cos(index2 * 0.2);
  -- frozen coefficient field (variable-coefficient diffusion)
  [R] C := 1.0 + 0.1 * sin(index1 * 0.3) * cos(index2 * 0.3);
end;

-- red then black half-sweep: C@d + A@d pair up per neighbour within
-- each statement (combinable); the black half re-reads C@d with no
-- intervening write to C (removable), but its A@d reads are killed by
-- the red write (not removable)
procedure sweep();
begin
  [In] A := A + RED * (0.25 * (C@north * A@north + C@south * A@south
                             + C@east * A@east + C@west * A@west) - C * A);
  [In] A := A + BLACK * (0.25 * (C@north * A@north + C@south * A@south
                               + C@east * A@east + C@west * A@west) - C * A);
  [In] err := max<< abs(C * A);
end;

procedure main();
begin
  init();
  for it := 1 to niters do
    sweep();
  end;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile RBGS with optional config overrides and optimization."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "rbgs.zl", merged, opt)
