"""The benchmark programs, written in ZL.

The paper evaluates four substantial data-parallel programs (its
Figure 7) plus a synthetic two-node overhead benchmark (its Figure 6).
The original ZPL sources are not available; these are re-derived
implementations that preserve the *communication structure* the paper
describes and depends on:

``tomcatv``
    Thompson solver / mesh generation (SPEC).  One large main-loop basic
    block containing the paper's exact Figure 4 fragment (its redundancy
    and combining behaviour is analyzed in the text), a tridiagonal-style
    relaxation with cross-iteration dependences that limit pipelining,
    and a narrow-band sequential phase.

``swm``
    Shallow-water weather prediction.  Three phase procedures per time
    step (block boundaries at call sites), with each shift direction
    confined to a single statement per block — the structure under which
    the max-latency-hiding heuristic retains every combination.

``simple``
    Livermore hydrodynamics.  Many long basic blocks with heavily
    repeated stencil references (large redundancy-removal gains), mixed
    same/different-statement direction groups (partial max-latency
    combining), and all communication in the main body (pipelining and
    one-sided communication pay off).

``sp``
    NAS SP-like 3-D ADI solver: rank-3 arrays distributed over the 2-D
    mesh with a local third dimension (z sweeps communicate nothing),
    x/y line-solve sweeps with cross-iteration dependences, and
    band-confined phases.

Beyond the paper's four, the registry also serves a classic-kernel
corpus (``jacobi``, ``rbgs``, ``multigrid`` — see each module for why
its communication shape adds coverage the paper's programs lack) and
*generated* synthetic programs: any ``gen_<seed>`` name resolves
through :mod:`repro.programs.generate`, the seeded ZL program
generator.  All three families flow through every surface (studies,
sweeps, frontier, composition, serve) identically.

Each module exposes ``SOURCE`` (the ZL text), ``DEFAULT_CONFIG``, and a
``build(config=..., opt=...)`` helper returning an optimized
:class:`~repro.ir.nodes.IRProgram`.  :mod:`repro.programs.registry` maps
names to modules for the harness.
"""

from repro.programs.registry import (
    BENCHMARKS,
    KERNELS,
    available_benchmarks,
    build_benchmark,
    benchmark_source,
    default_config,
    small_config,
    validate_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "KERNELS",
    "available_benchmarks",
    "build_benchmark",
    "benchmark_source",
    "default_config",
    "small_config",
    "validate_benchmark",
]
