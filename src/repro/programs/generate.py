"""Seeded generator of valid ZL programs — the synthetic corpus.

The paper evaluates the optimizer on four whole programs.  This module
manufactures an unbounded family of further inputs: given a seed (and
optionally a :class:`GeneratorProfile`), :func:`generate_source` emits a
complete, semantically valid ZL program exercising the constructs the
optimizer cares about — shifted stencil reads (``@``), periodic wrap
reads (``@@``), region-scoped statement blocks, counted and ``repeat``
loop nests, scalar reductions, branches, and multiple phase procedures
whose call sites bound basic blocks.

Three properties the rest of the repo builds on:

**Validity by construction.**  Every program compiles through the real
lexer/parser/semantic phases with no special cases.  The interior region
leaves a margin of ``profile.max_offset`` cells on every side, so plain
``@`` reads can never leave an array's domain; wrap reads use offsets
bounded by the margin, far below the domain extent; loop variables are
drawn from a reserved pool so they can never shadow a declaration; and
``repeat`` loops count a dedicated scalar upward so they terminate
without relying on array values.

**Determinism.**  The same ``(seed, profile)`` pair yields byte-identical
source text, on any platform, in any process: all randomness flows
through one :class:`random.Random` and every numeric literal is chosen
from a fixed pool of literal *strings* (never formatted floats).  The
program is named ``gen_<seed>``, and the registry resolves that name
back through :func:`generated_seed`, which makes generated programs
first-class benchmarks: ``run_study(benchmarks=("gen_7",))`` works, as
do sweeps, the frontier tools, composition, and ``repro serve`` —
engine fingerprints key on the generated *source text*, so cached
results stay correct even if the generator evolves.

**Numeric boundedness.**  Stencil updates are damped convex-ish
combinations with coefficients well below 1 over initial data of
magnitude ``O(n)``, so NUMERIC-mode differential runs (compiled fast
path vs interpreted oracle, batched vs scalar) stay finite over the
short iteration counts the corpus uses.  Control flow never depends on
array contents: branch and ``repeat`` conditions read only *control
scalars* updated by literal arithmetic, keeping TIMING-mode runs exact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm import OptimizationConfig
from repro.errors import ExperimentError
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

__all__ = [
    "DEFAULT_PROFILE",
    "GEN_DEFAULT_CONFIG",
    "GEN_SMALL_CONFIG",
    "GeneratorProfile",
    "generate_program",
    "generate_source",
    "generated_name",
    "generated_seed",
]

#: Coefficient pool for damped stencil updates.  Literal *strings*, so
#: the emitted source is byte-stable and never passes through float
#: formatting.  All values are small enough that any statement this
#: module emits is a bounded update of bounded inputs.
_COEFFS = ("0.5", "0.25", "0.125", "0.1", "0.05", "0.2", "0.3", "0.15")

#: Scalar seed literals for control-scalar initialization.
_SCALAR_LITS = ("0.0", "1.0", "2.0", "0.5", "3.0")

#: Reduction operators (``<<`` spelled by the emitter).
_REDUCTIONS = ("+", "max", "min")

#: One-argument intrinsics safe on any finite input.
_UNARY = ("abs", "sin", "cos", "tanh")

_GENERATED_RE = re.compile(r"^gen_(\d{1,9})$")

#: Config defaults/smalls for generated programs (mirrors the bundled
#: benchmark modules' ``DEFAULT_CONFIG``/``SMALL_CONFIG`` contract).
GEN_DEFAULT_CONFIG: Dict[str, int] = {"n": 16, "niters": 2}
GEN_SMALL_CONFIG: Dict[str, int] = {"n": 12, "niters": 1}


@dataclass(frozen=True)
class GeneratorProfile:
    """The feature profile of a generated program.

    Each field biases one axis of the emitted corpus; the defaults give
    compact programs (~40 statements) that still exercise every
    construct.  Profiles are plain frozen dataclasses so hypothesis
    strategies can build them directly.

    Attributes
    ----------
    arrays:
        Parallel arrays declared over the full region (>= 2).
    scalars:
        Data scalars fed by reductions (>= 1); two *control* scalars are
        always added on top for branch/repeat conditions.
    directions:
        Distinct direction vectors to declare (>= 1; deduplicated by
        offset, so fewer may be emitted for tiny ``max_offset``).
    max_offset:
        Bound on each direction component's magnitude (>= 1); also the
        interior-region margin, so ``@`` reads are valid by construction.
    phases:
        Phase procedures called from the main loop (>= 1).
    statements:
        Array statements per phase (>= 1).
    terms:
        Maximum shifted terms on one statement's right-hand side (>= 1).
    reduction_prob, wrap_prob, scope_block_prob, branch_prob:
        Per-opportunity probabilities of emitting a scalar reduction
        statement, using a wrap (``@@``) read, wrapping a statement run
        in a ``[In] begin .. end`` scope block, or emitting a branch.
    repeat_prob:
        Probability that a phase call in ``main`` is driven by a counted
        ``repeat`` loop instead of being called once per iteration.
    inner_loop_prob:
        Probability that a phase body nests part of itself in a counted
        ``for`` loop.
    n, niters:
        Config defaults baked into the source (overridable at compile
        time like any benchmark config).  ``n`` must leave a usable
        interior: ``n >= 2 * max_offset + 4``.
    """

    arrays: int = 4
    scalars: int = 2
    directions: int = 4
    max_offset: int = 2
    phases: int = 2
    statements: int = 5
    terms: int = 3
    reduction_prob: float = 0.3
    wrap_prob: float = 0.2
    scope_block_prob: float = 0.3
    repeat_prob: float = 0.25
    branch_prob: float = 0.2
    inner_loop_prob: float = 0.25
    n: int = 16
    niters: int = 2

    def __post_init__(self) -> None:
        for field_name, minimum in (
            ("arrays", 2),
            ("scalars", 1),
            ("directions", 1),
            ("max_offset", 1),
            ("phases", 1),
            ("statements", 1),
            ("terms", 1),
            ("niters", 1),
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise ExperimentError(
                    f"generator profile {field_name} must be an integer "
                    f">= {minimum}, got {value!r}"
                )
        for field_name in (
            "reduction_prob",
            "wrap_prob",
            "scope_block_prob",
            "repeat_prob",
            "branch_prob",
            "inner_loop_prob",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ExperimentError(
                    f"generator profile {field_name} must be in [0, 1], "
                    f"got {value!r}"
                )
        floor = 2 * self.max_offset + 4
        if not isinstance(self.n, int) or self.n < floor:
            raise ExperimentError(
                f"generator profile n must be an integer >= {floor} "
                f"(2 * max_offset + 4) so the interior region is non-empty, "
                f"got {self.n!r}"
            )


DEFAULT_PROFILE = GeneratorProfile()


def generated_name(seed: int) -> str:
    """The registry name of the generated program for ``seed``."""
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ExperimentError(f"generator seed must be a non-negative integer, got {seed!r}")
    return f"gen_{seed}"


def generated_seed(name: str) -> Optional[int]:
    """The seed encoded in a ``gen_<seed>`` benchmark name, else None."""
    match = _GENERATED_RE.match(name)
    return int(match.group(1)) if match else None


class _Emitter:
    """Indentation-tracking line buffer."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str = "") -> None:
        self.lines.append(("  " * self.depth + text) if text else "")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Generator:
    def __init__(self, seed: int, profile: GeneratorProfile) -> None:
        self.rng = Random(seed)
        self.seed = seed
        self.p = profile
        self.out = _Emitter()
        self.arrays = [f"A{i}" for i in range(profile.arrays)]
        self.scalars = [f"s{i}" for i in range(profile.scalars)]
        # control scalars: drive branches and repeat loops with literal
        # arithmetic only, so control flow never depends on array data
        self.controls = ["c0", "c1"]
        self.directions = self._pick_directions()
        self.loop_vars = 0

    # -- declarations -----------------------------------------------------

    def _pick_directions(self) -> List[Tuple[str, Tuple[int, int]]]:
        """Distinct non-zero offset vectors within ``max_offset``."""
        m = self.p.max_offset
        seen = set()
        picked: List[Tuple[str, Tuple[int, int]]] = []
        # axis-unit directions first: every generated program has at
        # least one classic nearest-neighbour exchange
        pool = [(0, 1), (0, -1), (1, 0), (-1, 0)]
        while len(picked) < self.p.directions:
            if pool:
                off = pool.pop(0)
            else:
                off = (
                    self.rng.randint(-m, m),
                    self.rng.randint(-m, m),
                )
                if off == (0, 0) or off in seen:
                    # bounded retry through the while loop
                    if len(seen) >= (2 * m + 1) ** 2 - 1:
                        break
                    continue
            if off in seen:
                continue
            seen.add(off)
            picked.append((f"d{len(picked)}", off))
        return picked

    def _fresh_loop_var(self) -> str:
        self.loop_vars += 1
        return f"i{self.loop_vars}"

    # -- expression pieces ------------------------------------------------

    def _coeff(self) -> str:
        return self.rng.choice(_COEFFS)

    def _shifted_ref(self) -> str:
        array = self.rng.choice(self.arrays)
        dname, _ = self.rng.choice(self.directions)
        op = "@@" if self.rng.random() < self.p.wrap_prob else "@"
        return f"{array}{op}{dname}"

    def _stencil_rhs(self, target: str) -> str:
        """A damped update: ``c0 * target + sum(ci * shifted-or-local)``.

        Coefficients come from a pool bounded by 0.5 and each statement
        divides the sum by the term count, so iterates stay bounded.
        """
        nterms = self.rng.randint(1, self.p.terms)
        terms = []
        for _ in range(nterms):
            ref = self._shifted_ref()
            if self.rng.random() < 0.2:
                ref = f"{self.rng.choice(_UNARY)}({ref})"
            terms.append(f"{self._coeff()} * {ref}")
        body = " + ".join(terms)
        return f"{self._coeff()} * {target} + ({body}) / {nterms}.0"

    # -- statements -------------------------------------------------------

    def _array_statement(self) -> str:
        target = self.rng.choice(self.arrays)
        return f"{target} := {self._stencil_rhs(target)};"

    def _reduction_statement(self) -> str:
        scalar = self.rng.choice(self.scalars)
        op = self.rng.choice(_REDUCTIONS)
        array = self.rng.choice(self.arrays)
        operand = f"abs({array})" if op in ("max", "min") else f"{self._coeff()} * {array}"
        return f"{scalar} := {op}<< {operand};"

    def _emit_statement_run(self, count: int) -> None:
        """``count`` region statements, possibly grouped in a scope block."""
        out = self.out
        if count > 1 and self.rng.random() < self.p.scope_block_prob:
            out.emit("[In] begin")
            out.depth += 1
            for _ in range(count):
                out.emit(self._array_statement())
            out.depth -= 1
            out.emit("end;")
        else:
            for _ in range(count):
                out.emit(f"[In] {self._array_statement()}")

    def _emit_phase_body(self) -> None:
        out = self.out
        remaining = self.p.statements
        while remaining > 0:
            run = self.rng.randint(1, min(3, remaining))
            roll = self.rng.random()
            if roll < self.p.branch_prob:
                # branch on a control scalar; both arms do array work so
                # either path exercises communication
                control = self.rng.choice(self.controls)
                out.emit(f"if {control} > {self.rng.choice(_SCALAR_LITS)} then")
                out.depth += 1
                self._emit_statement_run(run)
                out.depth -= 1
                out.emit("else")
                out.depth += 1
                out.emit(f"[In] {self._array_statement()}")
                out.depth -= 1
                out.emit("end;")
            elif roll < self.p.branch_prob + self.p.inner_loop_prob:
                var = self._fresh_loop_var()
                trips = self.rng.randint(2, 3)
                out.emit(f"for {var} := 1 to {trips} do")
                out.depth += 1
                self._emit_statement_run(run)
                out.depth -= 1
                out.emit("end;")
            else:
                self._emit_statement_run(run)
            if self.rng.random() < self.p.reduction_prob:
                out.emit(f"[In] {self._reduction_statement()}")
            remaining -= run

    # -- whole program ----------------------------------------------------

    def generate(self) -> str:
        p, out = self.p, self.out
        margin = p.max_offset
        out.emit(f"program gen_{self.seed};")
        out.emit()
        out.emit("-- generated by repro.programs.generate:")
        out.emit(f"--   seed={self.seed} profile={_profile_tag(p)}")
        out.emit()
        out.emit(f"config n      : integer = {p.n};")
        out.emit(f"config niters : integer = {p.niters};")
        out.emit()
        out.emit("region R  = [1..n, 1..n];")
        out.emit(f"region In = [{1 + margin}..n-{margin}, {1 + margin}..n-{margin}];")
        out.emit()
        for name, (di, dj) in self.directions:
            out.emit(f"direction {name} = [{di}, {dj}];")
        out.emit()
        out.emit(f"var {', '.join(self.arrays)} : [R] double;")
        out.emit(f"var {', '.join(self.scalars + self.controls + ['chk'])} : double;")
        out.emit()

        out.emit("procedure init();")
        out.emit("begin")
        out.depth += 1
        for i, array in enumerate(self.arrays):
            ca, cb, cc = self._coeff(), self._coeff(), self._coeff()
            trig = self.rng.choice(("sin", "cos"))
            out.emit(
                f"[R] {array} := {ca} * index1 + {cb} * index2 "
                f"+ {cc} * {trig}(index1 + {i}.0);"
            )
        for scalar in self.scalars + self.controls:
            out.emit(f"{scalar} := {self.rng.choice(_SCALAR_LITS)};")
        out.depth -= 1
        out.emit("end;")
        out.emit()

        for phase in range(p.phases):
            out.emit(f"procedure phase{phase}();")
            out.emit("begin")
            out.depth += 1
            self._emit_phase_body()
            out.depth -= 1
            out.emit("end;")
            out.emit()

        out.emit("procedure main();")
        out.emit("begin")
        out.depth += 1
        out.emit("init();")
        loop_var = self._fresh_loop_var()
        out.emit(f"for {loop_var} := 1 to niters do")
        out.depth += 1
        for phase in range(p.phases):
            if self.rng.random() < p.repeat_prob:
                # a counted repeat loop: the control scalar is reset and
                # stepped with literals, so termination is data-independent
                trips = self.rng.randint(2, 3)
                out.emit("c0 := 0.0;")
                out.emit("repeat")
                out.depth += 1
                out.emit("c0 := c0 + 1.0;")
                out.emit(f"phase{phase}();")
                out.depth -= 1
                out.emit(f"until c0 >= {trips}.0;")
            else:
                out.emit(f"phase{phase}();")
        out.depth -= 1
        out.emit("end;")
        out.emit("[In] chk := +<< A0;")
        out.depth -= 1
        out.emit("end;")
        return self.out.text()


def _profile_tag(p: GeneratorProfile) -> str:
    """Compact profile fingerprint for the generated header comment."""
    return (
        f"a{p.arrays}s{p.scalars}d{p.directions}o{p.max_offset}"
        f"p{p.phases}t{p.statements}x{p.terms}n{p.n}i{p.niters}"
    )


def generate_source(seed: int, profile: Optional[GeneratorProfile] = None) -> str:
    """Deterministically generate the ZL source for ``seed``.

    Byte-identical for identical ``(seed, profile)`` inputs.  The
    program is named ``gen_<seed>`` so it can be addressed through the
    benchmark registry; see the module docstring for the validity and
    boundedness guarantees.
    """
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ExperimentError(
            f"generator seed must be a non-negative integer, got {seed!r}"
        )
    return _Generator(seed, profile or DEFAULT_PROFILE).generate()


def generate_program(
    seed: int,
    profile: Optional[GeneratorProfile] = None,
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Generate and compile the program for ``seed`` in one step."""
    p = profile or DEFAULT_PROFILE
    merged = {"n": p.n, "niters": p.niters}
    if config:
        merged.update(config)
    source = generate_source(seed, profile)
    return compile_source(source, f"gen_{seed}.zl", merged, opt)


def corpus(
    seeds: Sequence[int], profile: Optional[GeneratorProfile] = None
) -> Dict[str, str]:
    """``name -> source`` for a batch of seeds (a fuzz corpus)."""
    return {generated_name(s): generate_source(s, profile) for s in seeds}


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
    *,
    seed: int = 0,
) -> IRProgram:
    """Benchmark-module-shaped entry point (registry compatibility)."""
    return generate_program(seed, config=config, opt=opt)
