"""The synthetic overhead benchmark (the paper's Figure 6).

The paper measures the *exposed* communication cost — the software
overhead that computation cannot hide — by bouncing a message between two
dedicated nodes 10000 times with busy loops between the communication
calls, sized so the wire time is fully overlapped; the busy-loop time is
then subtracted.

We reproduce the measurement through the whole stack: for each message
size a small ZL program is generated (the direction offset must be a
literal, hence generation), compiled with full optimization so DR/SR
hoist above the busy statement, and run on a two-node partition of the
simulated machine.  The exposed cost per repetition is
``(T(with transfer) - T(busy only)) / reps``.

:func:`measured_overhead` runs the simulation; :func:`analytic_overhead`
asks the machine's cost model directly.  A test asserts they agree — the
simulated machine faithfully exposes its own primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.comm import OptimizationConfig
from repro.machine.params import Machine
from repro.programs.common import compile_source
from repro.runtime import ExecutionMode, simulate

#: Message sizes (in doubles) swept by the Figure 6 experiment.
DEFAULT_SIZES = (8, 32, 128, 512, 1024, 2048, 4096)

#: Repetitions per measurement (the paper uses 10000; the simulator is
#: deterministic so fewer suffice, but the default follows the paper).
DEFAULT_REPS = 10000


def ping_source(size_doubles: int, busy_elems: int, reps: int, with_comm: bool) -> str:
    """Generate the ZL ping program for one message size.

    A 1 x 2*size array is split across the two processors of a 1x2 mesh;
    reading ``A@off`` with offset ``(0, size)`` moves exactly ``size``
    doubles from node 1 to node 0 per repetition.  The busy statement
    (``W``) sits between the transfer's initiation and completion once
    pipelining hoists DR/SR, hiding the wire time.  ``with_comm=False``
    generates the control program used for busy-loop subtraction.
    """
    m = int(size_doubles)
    nb = max(int(busy_elems), m)
    # identical statement shapes (same flop count) so the subtraction
    # isolates communication cost exactly.  The exchange is symmetric
    # (each node sends one strip and receives one strip per repetition)
    # so every node pays one full DR/SR/DN/SV set per repetition — the
    # quantity Figure 6 plots.
    fwd = "B := A@off * 1.0001 + 0.5;" if with_comm else "B := A * 1.0001 + 0.5;"
    bwd = (
        "C := A@back * 1.0001 + 0.5;" if with_comm else "C := A * 1.0001 + 0.5;"
    )
    return f"""
program ping;

config reps : integer = {int(reps)};

-- every array shares one region so the two nodes split it identically;
-- the directions jump across the partition boundary at column {nb},
-- and reading them over {m}-column strips moves exactly {m} doubles
-- each way per repetition
region Data  = [1..1, 1..{2 * nb}];
region HalfL = [1..1, 1..{m}];
region HalfR = [1..1, {nb + 1}..{nb + m}];

direction off  = [0,  {nb}];
direction back = [0, -{nb}];

var A, B, C, W : [Data] double;

procedure main();
begin
  [Data] A := index2 * 0.5;
  [Data] W := 1.0;
  for r := 1 to reps do
    [Data] W := W * 1.000001 + 0.000001 * W * W - 0.0000001 * W * W * W;
    [HalfL] {fwd}
    [HalfR] {bwd}
  end;
end;
"""


@dataclass
class OverheadPoint:
    """One point of the Figure 6 curve."""

    size_doubles: int
    size_bytes: int
    exposed_seconds: float

    @property
    def exposed_microseconds(self) -> float:
        return self.exposed_seconds * 1e6


def _busy_elems_for(machine: Machine, size_doubles: int) -> int:
    """Busy elements per node sized so the busy statement's compute time
    exceeds the worst-case wire time of the transfer (the paper: "the
    loop performs enough computation to hide the transmission time")."""
    wire = machine.network.transfer_time(size_doubles * 8)
    flops_per_elem = 8  # of the generated busy statement
    elems = wire / (flops_per_elem * machine.compute.flop_time)
    return max(256, int(elems * 2))


def measured_overhead(
    machine_factory,
    library: str,
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = 1000,
) -> List[OverheadPoint]:
    """Run the synthetic benchmark on a 2-node partition.

    Parameters
    ----------
    machine_factory:
        ``repro.machine.paragon`` or ``repro.machine.t3d``.
    library:
        Communication library name understood by the factory.
    sizes:
        Message sizes in doubles.
    reps:
        Repetitions (the simulator is deterministic; 1000 is plenty).
    """
    machine = machine_factory(2, library)
    opt = OptimizationConfig.full()
    points: List[OverheadPoint] = []
    for size in sizes:
        nb = _busy_elems_for(machine, size)
        timed = compile_source(
            ping_source(size, nb, reps, with_comm=True), "ping.zl", opt=opt
        )
        control = compile_source(
            ping_source(size, nb, reps, with_comm=False), "ping.zl", opt=opt
        )
        t_comm = simulate(timed, machine, ExecutionMode.TIMING).time
        t_busy = simulate(control, machine, ExecutionMode.TIMING).time
        exposed = (t_comm - t_busy) / reps
        points.append(
            OverheadPoint(
                size_doubles=size,
                size_bytes=size * 8,
                exposed_seconds=exposed,
            )
        )
    return points


def analytic_overhead(
    machine_factory, library: str, sizes: Sequence[int] = DEFAULT_SIZES
) -> List[OverheadPoint]:
    """The same curve straight from the machine's cost model."""
    machine = machine_factory(2, library)
    return [
        OverheadPoint(
            size_doubles=size,
            size_bytes=size * 8,
            exposed_seconds=machine.exposed_overhead(size * 8),
        )
        for size in sizes
    ]


def figure6_curves(
    sizes: Sequence[int] = DEFAULT_SIZES, reps: int = 1000
) -> Dict[str, List[OverheadPoint]]:
    """All five curves of the paper's Figure 6, measured through the
    simulator: csend/crecv, isend/irecv, hsend/hrecv on the Paragon;
    PVM and SHMEM on the T3D."""
    from repro.machine import paragon, t3d

    return {
        "paragon csend/crecv": measured_overhead(paragon, "nx", sizes, reps),
        "paragon isend/irecv": measured_overhead(paragon, "nx_async", sizes, reps),
        "paragon hsend/hrecv": measured_overhead(paragon, "nx_callback", sizes, reps),
        "t3d pvm": measured_overhead(t3d, "pvm", sizes, reps),
        "t3d shmem": measured_overhead(t3d, "shmem", sizes, reps),
    }
