"""SP — NAS scalar-pentadiagonal CFD application benchmark, in ZL.

The paper's Table 4 benchmark (16x16x16, 64 processors).  SP is a 3-D
ADI-style solver: each iteration computes a stencil right-hand side over
the five solution components, then performs line solves in x, y and z.
On ZPL's two-dimensional virtual processor mesh the first two dimensions
are distributed and the third is processor-local, which gives SP its
signature communication structure:

* **rhs** reads every component shifted in x and y (communication) *and*
  z (free — the third dimension is local, so ``@zup``/``@zdn`` generate
  no transfers at all);
* **x/y line solves** are recurrence sweeps along distributed
  dimensions: cross-iteration dependences leave pipelining little
  distance, consecutive sweeps overlap in a wavefront pipeline under
  asynchronous message passing, and the one-way prototype's
  synchronization throttles that overlap — SP, like TOMCATV, *degrades*
  under ``pl with shmem`` (paper Table 4);
* **z solve** is pure local computation;
* rhs direction groups span five statements (combined by max-combining
  only), while each solve sweep has one same-statement pair (combined
  under both heuristics) plus singles — the max-latency heuristic lands
  between ``rr`` and ``cc``, as in Table 4.  The paper could not run
  ``pl with max latency`` for SP (a library bug); we can.

The default grid is 16x16x128 rather than the paper's 16x16x16: the
deepened local dimension restores the compute-to-communication balance
of the real SP, whose per-element work (five coupled equations,
pentadiagonal systems) is far heavier than our model statements.  The
distributed extents — and hence every transfer — match the paper's run.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"nx": 16, "nz": 128, "niters": 60, "nsweep": 4}

#: Reduced problem for tests.
SMALL_CONFIG: Dict[str, int] = {"nx": 8, "nz": 8, "niters": 2, "nsweep": 2}

SOURCE = """
program sp;

config nx     : integer = 16;    -- distributed extents (x and y)
config nz     : integer = 128;   -- processor-local extent
config niters : integer = 60;    -- ADI iterations
config nsweep : integer = 4;     -- recurrence sweeps per line solve

region R  = [1..nx, 1..nx, 1..nz];
region In = [2..nx-1, 2..nx-1, 2..nz-1];

direction xup = [ 1,  0,  0];
direction xdn = [-1,  0,  0];
direction yup = [ 0,  1,  0];
direction ydn = [ 0, -1,  0];
direction zup = [ 0,  0,  1];
direction zdn = [ 0,  0, -1];

-- the five solution components and their right-hand sides
var U1, U2, U3, U4, U5           : [R] double;
var R1, R2, R3, R4, R5           : [R] double;
var LHSX, LHSY, LHSZ, COEF, DISS : [R] double;
var rnorm : double;

procedure setup();
begin
  [R] U1 := 1.0 + 0.01 * index1 + 0.02 * index2 + 0.001 * index3;
  [R] U2 := 0.5 * sin(index1 * 0.3) + 0.1 * index2;
  [R] U3 := 0.5 * cos(index2 * 0.3) + 0.1 * index3;
  [R] U4 := 0.25 * (index1 + index2) * 0.1;
  [R] U5 := 2.5 + 0.05 * index3;
  [R] COEF := 0.3 + 0.001 * (index1 + index2 + index3);
  [R] LHSX := 1.0;
  [R] LHSY := 1.0;
  [R] LHSZ := 1.0;
  -- smoothing of the coefficient field: the second and third statements
  -- re-read the first's transfers (setup-only redundancy)
  [In] DISS := COEF@xup + COEF@xdn + COEF@yup + COEF@ydn;
  [In] COEF := COEF * 0.96 + 0.01 * (COEF@xup + COEF@xdn)
             + 0.01 * (COEF@yup + COEF@ydn);
  [In] LHSX := LHSX + 0.001 * (COEF@xup - COEF@xdn)
             + 0.001 * (COEF@yup - COEF@ydn);
end;

-- stencil right-hand side: each component reads x, y (communication)
-- and z (local) neighbours; the dissipation statements re-read the
-- first two components' transfers
procedure rhs();
begin
  [In] R1 := COEF * (U1@xup - 2.0 * U1 + U1@xdn)
           + COEF * (U1@yup - 2.0 * U1 + U1@ydn)
           + COEF * (U1@zup - 2.0 * U1 + U1@zdn);
  [In] R2 := COEF * (U2@xup - 2.0 * U2 + U2@xdn)
           + COEF * (U2@yup - 2.0 * U2 + U2@ydn)
           + COEF * (U2@zup - 2.0 * U2 + U2@zdn);
  [In] R3 := COEF * (U3@xup - 2.0 * U3 + U3@xdn)
           + COEF * (U3@yup - 2.0 * U3 + U3@ydn)
           + COEF * (U3@zup - 2.0 * U3 + U3@zdn);
  [In] R4 := COEF * (U4@xup - 2.0 * U4 + U4@xdn)
           + COEF * (U4@yup - 2.0 * U4 + U4@ydn)
           + COEF * (U4@zup - 2.0 * U4 + U4@zdn);
  [In] R5 := COEF * (U5@xup - 2.0 * U5 + U5@xdn)
           + COEF * (U5@yup - 2.0 * U5 + U5@ydn)
           + COEF * (U5@zup - 2.0 * U5 + U5@zdn);
  [In] DISS := 0.1 * (U1@xup + U1@xdn + U1@yup + U1@ydn)
             + 0.05 * (U2@xup + U2@xdn + U2@yup + U2@ydn);
  [In] R1 := R1 - 0.02 * DISS;
  [In] R2 := R2 - 0.01 * DISS;
end;

-- one recurrence sweep of the x line solve
procedure xsweep();
begin
  [In] LHSX := 1.0 / (4.0 - LHSX@xup * COEF@xup);
  [In] R1 := (R1 + R1@xup * LHSX) * 0.99 + 0.01 * COEF@xup;
  [In] R2 := (R2 + R2@xdn * LHSX) * 0.99;
  [In] R3 := (R3 + R3 * LHSX * 0.1) * 0.99;
end;

-- one recurrence sweep of the y line solve
procedure ysweep();
begin
  [In] LHSY := 1.0 / (4.0 - LHSY@yup * COEF@yup);
  [In] R4 := (R4 + R4@yup * LHSY) * 0.99 + 0.01 * COEF@yup;
  [In] R5 := (R5 + R5@ydn * LHSY) * 0.99;
  [In] R1 := (R1 + R1 * LHSY * 0.1) * 0.99;
end;

-- one recurrence sweep of the z line solve: the third dimension is
-- processor-local, so these shifts generate no communication at all
procedure zsweep();
begin
  [In] LHSZ := 1.0 / (4.0 - LHSZ@zup * COEF@zup);
  [In] R2 := (R2 + R2@zup * LHSZ) * 0.99;
  [In] R3 := (R3 + R3@zdn * LHSZ) * 0.99;
  [In] R4 := (R4 + R4 * LHSZ * 0.1) * 0.99;
end;

-- apply the update
procedure add();
begin
  [In] U1 := U1 + 0.05 * R1;
  [In] U2 := U2 + 0.05 * R2;
  [In] U3 := U3 + 0.05 * R3;
  [In] U4 := U4 + 0.05 * R4;
  [In] U5 := U5 + 0.05 * R5;
end;

procedure main();
begin
  setup();
  for it := 1 to niters do
    rhs();
    for s := 1 to nsweep do
      xsweep();
    end;
    for s := 1 to nsweep do
      ysweep();
    end;
    for s := 1 to nsweep do
      zsweep();
    end;
    add();
  end;
  [In] rnorm := +<< (R1 * R1 + R5 * R5);
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile SP with optional config overrides and optimization."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "sp.zl", merged, opt)
