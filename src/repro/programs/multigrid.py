"""Multigrid ladder — stride-doubling V-cycle, in ZL.

A small three-level multigrid V-cycle, expressed the only way ZL's
single-region model allows: instead of physically restricting onto
coarser grids (which needs the index remapping ZL deliberately lacks),
each level smooths *on the fine grid* with a stencil whose offsets
double per level — stride 1, then 2, then 4 — which is exactly the
communication pattern a coarse-grid sweep induces on the processors
that own the fine data.  The cycle runs down the ladder
(pre-smooth h -> 2h -> 4h), takes extra sweeps at the coarsest level,
and comes back up (4h -> 2h -> h), finishing with a residual reduction.

As a corpus member multigrid contributes what no other program has:
*multi-hop* transfers.  The stride-2 and stride-4 directions move data
across processor boundaries farther than one fluff cell, stressing the
transfer planner's general (non-nearest-neighbour) path, and each
level's distinct direction set means combining must group by offset
rather than merging everything — distance-heterogeneous communication
the paper's four benchmarks never exercise.  Each smoother also reads
the full-weighted source term ``F`` at its own stride, so ``F@d``
pairs with ``U@d`` per neighbour: same-statement combining halves the
transfer count (the corpus's largest ``cc`` win), while intra-block
redundancy removal correctly finds nothing — every block reads each
``(array, direction)`` exactly once, and the cross-*block* ``F``
re-reads are interblock-rr territory.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"n": 64, "niters": 8, "ncoarse": 4}

#: Reduced problem for tests.
SMALL_CONFIG: Dict[str, int] = {"n": 16, "niters": 2, "ncoarse": 2}

SOURCE = """
program multigrid;

config n       : integer = 64;
config niters  : integer = 8;    -- V-cycles
config ncoarse : integer = 4;    -- extra sweeps at the coarsest level

region R  = [1..n, 1..n];
region In = [5..n-4, 5..n-4];    -- margin covers the stride-4 stencil

-- one direction set per ladder level: offsets double going coarser
direction n1 = [-1,  0];  direction s1 = [ 1,  0];
direction e1 = [ 0,  1];  direction w1 = [ 0, -1];
direction n2 = [-2,  0];  direction s2 = [ 2,  0];
direction e2 = [ 0,  2];  direction w2 = [ 0, -2];
direction n4 = [-4,  0];  direction s4 = [ 4,  0];
direction e4 = [ 0,  4];  direction w4 = [ 0, -4];

var U, F, RES : [R] double;
var err       : double;

procedure init();
begin
  [R] U := 0.0 * index1;
  [R] F := sin(index1 * 0.3) * sin(index2 * 0.3);
  [R] RES := 0.0 * index1;
end;

-- damped Jacobi smoothing at each stride with a full-weighted source
-- term: F@d pairs with U@d per neighbour and F is never written
procedure smooth1();
begin
  [In] U := U + 0.2 * (0.25 * (U@n1 + U@s1 + U@e1 + U@w1) - U
          + 0.25 * (F@n1 + F@s1 + F@e1 + F@w1));
end;

procedure smooth2();
begin
  [In] U := U + 0.2 * (0.25 * (U@n2 + U@s2 + U@e2 + U@w2) - U
          + 0.25 * (F@n2 + F@s2 + F@e2 + F@w2));
end;

procedure smooth4();
begin
  [In] U := U + 0.2 * (0.25 * (U@n4 + U@s4 + U@e4 + U@w4) - U
          + 0.25 * (F@n4 + F@s4 + F@e4 + F@w4));
end;

-- the residual re-reads both stride-1 stencils in its own block;
-- F@d1 pairs with U@d1 per neighbour, as in the smoothers
procedure residual();
begin
  [In] RES := F - (U - 0.25 * (U@n1 + U@s1 + U@e1 + U@w1))
            + 0.0625 * (F@n1 + F@s1 + F@e1 + F@w1);
  [In] err := max<< abs(RES);
end;

-- one V-cycle: down the ladder, extra coarse sweeps, back up
procedure vcycle();
begin
  smooth1();
  smooth2();
  for c := 1 to ncoarse do
    smooth4();
  end;
  smooth2();
  smooth1();
end;

procedure main();
begin
  init();
  for it := 1 to niters do
    vcycle();
    residual();
  end;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile the multigrid ladder with optional overrides."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "multigrid.zl", merged, opt)
