"""Shared helpers for the bundled ZL programs."""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig, optimize
from repro.frontend import analyze, parse
from repro.ir import lower
from repro.ir.nodes import IRProgram


def compile_source(
    source: str,
    name: str = "<string>",
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Parse, check, lower and (optionally) optimize a ZL source.

    ``opt=None`` returns the communication-free lowered program (what the
    sequential reference evaluator consumes); pass an
    :class:`~repro.comm.OptimizationConfig` to generate communication.
    """
    program = lower(analyze(parse(source, name), config))
    if opt is None:
        return program
    return optimize(program, opt)
