"""Shared helpers for the bundled ZL programs."""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig, optimize
from repro.frontend import analyze, parse
from repro.ir import lower
from repro.ir.nodes import IRProgram
from repro.obs import core as obs


def compile_source(
    source: str,
    name: str = "<string>",
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Parse, check, lower and (optionally) optimize a ZL source.

    ``opt=None`` returns the communication-free lowered program (what the
    sequential reference evaluator consumes); pass an
    :class:`~repro.comm.OptimizationConfig` to generate communication.

    Each phase runs under an observability span (``frontend:parse``,
    ``frontend:analyze``, ``ir:lower``, ``optimize``) when tracing is on
    (:mod:`repro.obs`); a disabled recorder makes these no-ops.
    """
    with obs.span("compile", source=name):
        with obs.span("frontend:parse", source=name):
            ast = parse(source, name)
        with obs.span("frontend:analyze", source=name):
            info = analyze(ast, config)
        with obs.span("ir:lower", source=name):
            program = lower(info)
        if opt is None:
            return program
        with obs.span("optimize", source=name, config=opt.describe()):
            return optimize(program, opt)
