"""Jacobi — five-point relaxation, in ZL.

The canonical data-parallel kernel: every interior point is replaced by
the average of its four axis neighbours, double-buffered through ``B``
so the sweep reads only old values, with a ``max<<`` residual reduction
per iteration (ZPL's textbook example program has exactly this shape).

The residual is computed from the *stencil*, not from the
double-buffered copy — ``err = max |stencil(A) - A|`` — which is how
convergence-checked Jacobi is usually written and re-reads all four
shifted values inside the same basic block.  That makes Jacobi the
*redundancy-removal* kernel of the corpus: ``rr`` halves its transfers
(8 per sweep down to 4), while combining finds nothing (each direction
goes to a different neighbour) and pipelining gains only what little
slack the short block offers.  A single-optimization profile the
paper's four re-read-heavy whole programs never isolate this cleanly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"n": 64, "niters": 100}

#: Reduced problem for tests.
SMALL_CONFIG: Dict[str, int] = {"n": 12, "niters": 2}

SOURCE = """
program jacobi;

config n      : integer = 64;
config niters : integer = 100;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction north = [-1,  0];
direction south = [ 1,  0];
direction east  = [ 0,  1];
direction west  = [ 0, -1];

var A, B : [R] double;
var err  : double;

-- smooth interior over a fixed harmonic boundary field
procedure init();
begin
  [R] A := sin(index1 * 0.2) * cos(index2 * 0.2);
  [R] B := A;
end;

-- the residual re-reads the stencil's four transfers in the same
-- block: redundant under rr, all distinct neighbours under cc
procedure sweep();
begin
  [In] B := 0.25 * (A@north + A@south + A@east + A@west);
  [In] err := max<< abs(0.25 * (A@north + A@south + A@east + A@west) - A);
  [In] A := B;
end;

procedure main();
begin
  init();
  for it := 1 to niters do
    sweep();
  end;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile Jacobi with optional config overrides and optimization."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "jacobi.zl", merged, opt)
