"""SIMPLE — Lagrangian hydrodynamics (Livermore), in ZL.

The paper's Table 3 benchmark (256x256, 64 processors).  SIMPLE is the
classic two-dimensional Lagrangian hydrodynamics benchmark: velocity and
coordinate updates from pressure/viscosity gradients on a quadrilateral
mesh, zone volume/density updates, artificial viscosity, energy and
equation-of-state updates, and a heat-conduction solve.  "All
communication occurs in the main body of the program" (the paper's
explanation for why SIMPLE pipelines so well), and the mesh staggering
makes the stencils *corner-heavy*: node-centered and zone-centered
quantities exchange through diagonal as well as axis neighbours.

Why the structure matches the paper's data:

* **setup and per-phase gradient code re-read shifted references
  heavily** — redundancy removal wins big statically (paper: 266 -> 103)
  and substantially dynamically (28188 -> 21433);
* **the heat-conduction inner loop** carries the dynamically hot
  combining opportunities, split between a same-statement group (merged
  under both heuristics) and cross-statement groups (merged only under
  max-combining): the max-latency heuristic lands between ``rr`` and
  ``cc`` in both static and dynamic counts, exactly as in Table 3;
* **diagonal transfers are three point-to-point messages under message
  passing but three cheap puts + one completion under one-way
  communication** — the per-message receive costs PVM pays and SHMEM
  avoids are why SIMPLE shows the paper's largest ``pl with shmem``
  improvement;
* long basic blocks with early-ready, late-used transfers give
  pipelining real distance to exploit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"n": 128, "niters": 40, "ncond": 14}

#: Reduced problem for tests.
SMALL_CONFIG: Dict[str, int] = {"n": 16, "niters": 2, "ncond": 2}

SOURCE = """
program simple;

config n      : integer = 128;
config niters : integer = 40;    -- hydro cycles
config ncond  : integer = 14;    -- heat conduction sweeps per cycle

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];
direction ne    = [-1,  1];
direction nw    = [-1, -1];
direction se    = [ 1,  1];
direction sw    = [ 1, -1];

-- node-centered coordinates and velocities; zone-centered state
var RXc, RYc, U, V           : [R] double;
var P, Q, RHO, VOL, E, T     : [R] double;
var MASS, GX, GY, GD         : [R] double;
var DU, DV, AREA, W1, W2     : [R] double;
var TB, QB, WB, SG, Q2, E2   : [R] double;
var dt, gamma, cfl, echeck   : double;

-- Mesh and state initialization: the metric terms re-read the same
-- shifted coordinates over and over — statically heavy, dynamically
-- executed once.
procedure setup();
begin
  dt    := 0.002;
  gamma := 1.4;
  [R] RXc := index2 + 0.05 * sin(index1 * 0.1);
  [R] RYc := index1 + 0.05 * sin(index2 * 0.1);
  [R] MASS := 1.0 + 0.001 * index1;
  [R] T := 300.0 + 0.1 * index2;
  [R] Q2 := T * 0.01;
  [In] GX := RXc@east - RXc@west;
  [In] GY := RYc@south - RYc@north;
  [In] GD := (RXc@se - RXc@nw) * (RYc@sw - RYc@ne);
  [In] AREA := 0.5 * ((RXc@east - RXc@west) * (RYc@south - RYc@north)
             - (RXc@se - RXc@nw) * (RYc@sw - RYc@ne) * 0.25);
  [In] VOL := abs(AREA) + 0.001 * abs(RXc@east - RXc@west)
            + 0.001 * abs(RYc@south - RYc@north);
  [In] W1  := 0.25 * (RXc@se + RXc@nw + RXc@east + RXc@west);
  [In] W2  := 0.25 * (RYc@sw + RYc@ne + RYc@south + RYc@north);
  [In] RHO := MASS / (VOL + 0.001);
  [In] E := T * 0.7 + 0.5 * (U * U + V * V);
  [In] P := (gamma - 1.0) * RHO * E;
  [In] Q := 0.0;
end;

-- corner-coupled pressure/viscosity gradients; the mixed-derivative and
-- smoothing statements re-read every reference of the first two
procedure gradients();
begin
  [In] GX := P@east - 2.0 * P + P@west + 0.5 * (Q@east - Q@west);
  [In] GY := P@south - 2.0 * P + P@north + 0.5 * (Q@south - Q@north);
  [In] GD := 0.25 * (P@se - P@ne - P@sw + P@nw);
  [In] W1 := (P@east - P@west) * (P@south - P@north) * 0.125
           + 0.1 * (P@se - P@sw);
end;

-- node velocity update from the gradients (no new communication beyond
-- the corner terms of the staggering)
procedure velocity();
begin
  [In] DU := GX + 0.5 * GD + 0.05 * (U@se - U@nw);
  [In] DV := GY - 0.5 * GD + 0.05 * (V@sw - V@ne);
  [In] U := U - dt * DU / (MASS + 0.001);
  [In] V := V - dt * DV / (MASS + 0.001);
end;

-- move the nodes (pure local computation)
procedure position();
begin
  [In] RXc := RXc + dt * U;
  [In] RYc := RYc + dt * V;
end;

-- zone volumes from the moved corner coordinates, then density
procedure volume();
begin
  [In] AREA := 0.5 * ((RXc@east - RXc) * (RYc@south - RYc)
             - (RXc@se - RXc) * (RYc@se - RYc) * 0.5);
  [In] W2 := abs(RXc@east - RXc) * 0.5 + abs(RYc@south - RYc) * 0.5;
  [In] VOL := abs(AREA) + 0.2 * W2 + 0.001;
  [In] RHO := MASS / VOL;
end;

-- artificial viscosity from velocity jumps across zone corners
procedure viscosity();
begin
  [In] Q := 0.3 * RHO * ((U@se - U) * (U@se - U)
          + (V@ne - V) * (V@ne - V));
  [In] W1 := abs(U@se - U) + abs(V@ne - V);
  [In] Q := min(Q, 2.0 + W1);
end;

-- energy update with a heat-flux correction term
procedure energy();
begin
  [In] E := E - (P + Q) * dt * (VOL - W2) + 0.01 * (T@north - T);
  [In] E2 := E2 * 0.9 + 0.005 * (T@north - T);
end;

-- equation of state: purely local
procedure pressure();
begin
  [In] P := (gamma - 1.0) * RHO * E;
  [In] T := E / (0.7 + 0.001 * RHO);
end;

-- one sweep of the heat-conduction solve: a same-statement east group
-- (combinable under both heuristics), redundant east re-reads, and a
-- cross-statement west group (combinable under max-combining only)
procedure conduct();
begin
  [In] TB := (T@east - T) * 0.4 + (Q2@east - Q2) * 0.1;
  [In] SG := SG * 0.9 + 0.1 * (T@east - Q2@east);
  [In] QB := (T@west - T) * 0.4;
  [In] WB := (Q2@west - Q2) * 0.1 + QB * 0.5;
  [In] T  := T + 0.3 * TB + 0.2 * QB;
  [In] Q2 := Q2 + 0.1 * WB + 0.005 * SG;
end;

procedure main();
begin
  setup();
  for cycle := 1 to niters do
    gradients();
    velocity();
    position();
    volume();
    viscosity();
    energy();
    pressure();
    for c := 1 to ncond do
      conduct();
    end;
  end;
  [In] echeck := +<< E;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile SIMPLE with optional config overrides and optimization."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "simple.zl", merged, opt)
