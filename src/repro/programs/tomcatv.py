"""TOMCATV — Thompson solver and mesh generation (SPEC), in ZL.

The paper's Table 1 benchmark (128x128, 64 processors).  The structure
mirrors what the paper describes and analyzes:

* the **main-loop block** contains exactly the Figure 4 fragment: the
  eight first-derivative statements and the two big residual statements
  whose ``X@east``/``X@west``/``X@south``/``X@north`` references are
  redundant with the earlier derivative statements (redundancy removal
  strips 8 of 24 references) and whose ``X``/``Y`` pairs per direction are
  combinable (combination reaches 8 transfers/iteration) — but never with
  identical send-receive spans, so the max-latency heuristic combines
  *nothing*, exactly as in the paper's Table 1 (``pl with max latency``
  has the same counts as ``rr``);
* a **tridiagonal-style relaxation** over eight row bands of a narrow
  column strip, each band reading the previous band's freshly written
  rows: a true sequential wavefront.  Pipelining finds almost no distance
  (the paper: "opportunities for pipelining are limited by cross-loop
  dependences and the short code sequence"), each band's three
  same-direction transfers combine under max-combining only, and the
  wavefront's clock spread is what the prototype SHMEM synchronization
  throttles;
* **setup code** with heavily redundant references, so redundancy removal
  wins statically much more than dynamically (the paper: "a significant
  portion of the redundant communication occurs in set up code").

Default dynamic-count arithmetic per main-loop iteration (a middle
column-0 processor participates in its band's transfers as receiver and
the next band's as sender): baseline 24 + 6*nsolve, rr 16 + 6*nsolve,
cc 8 + 2*nsolve.  With ``nsolve = 40`` the rr/baseline and cc/baseline
ratios land at 0.970 and 0.333 — the paper's Table 1 ratios are 0.970
and 0.327.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {
    "n": 128,
    "niters": 50,
    "nsolve": 40,
    "bandw": 16,
}

#: Reduced problem for tests: small mesh, few iterations.  ``n`` must be
#: divisible by 8 (the solver's row bands).
SMALL_CONFIG: Dict[str, int] = {"n": 16, "niters": 3, "nsolve": 2, "bandw": 2}

SOURCE = """
program tomcatv;

-- Thompson mesh generation: problem size and iteration counts
config n      : integer = 128;
config niters : integer = 50;    -- main relaxation iterations
config nsolve : integer = 40;    -- tridiagonal relaxation sweeps
config bandw  : integer = 16;    -- width of the sequential solver band

region R    = [1..n, 1..n];
region In   = [2..n-1, 2..n-1];

-- Row bands of the sequential tridiagonal relaxation.  The solver sweeps
-- the bands top to bottom; band b reads band b-1's freshly written last
-- row through @north, so the bands form a true wavefront: only one band
-- of the mesh is busy at a time (n must be divisible by 8).
region Band1 = [2..n/8, 1..bandw];
region Band2 = [n/8+1..2*n/8, 1..bandw];
region Band3 = [2*n/8+1..3*n/8, 1..bandw];
region Band4 = [3*n/8+1..4*n/8, 1..bandw];
region Band5 = [4*n/8+1..5*n/8, 1..bandw];
region Band6 = [5*n/8+1..6*n/8, 1..bandw];
region Band7 = [6*n/8+1..7*n/8, 1..bandw];
region Band8 = [7*n/8+1..n, 1..bandw];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];
direction ne    = [-1,  1];
direction nw    = [-1, -1];
direction se    = [ 1,  1];
direction sw    = [ 1, -1];

var X, Y, XX, YX, XY, YY, AA, BB, CC, RX, RY, D : [R] double;
var rxm, rym : double;

-- Mesh generation.  The derivative/metric statements below re-read the
-- same shifted references several times; all of the re-reads are
-- redundant and executed once, so redundancy removal improves the static
-- count far more than the dynamic count.
procedure setup();
begin
  [R] X := index2 * (1.0 / n) + 0.02 * sin(index1 * 0.05);
  [R] Y := index1 * (1.0 / n) + 0.02 * cos(index2 * 0.05);
  [In] XX := X@east - X@west;
  [In] YX := Y@east - Y@west;
  [In] XY := X@south - X@north;
  [In] YY := Y@south - Y@north;
  [In] D  := XX * YY - XY * YX;
  [In] AA := 0.25 * (X@east - X@west) + 0.25 * (X@south - X@north);
  [In] BB := 0.25 * (Y@east - Y@west) + 0.25 * (Y@south - Y@north);
  [In] CC := X@ne - X@sw + Y@se - Y@nw;
  [In] D  := D + 0.1 * (X@ne - X@sw) + 0.1 * (Y@se - Y@nw);
  [In] RX := 0.0;
  [In] RY := 0.0;
  [R]  D  := 0.25;
end;

procedure main();
begin
  setup();
  for it := 1 to niters do
    -- residual computation: the paper's Figure 4 fragment
    [In] XX := X@east - X@west;
    [In] YX := Y@east - Y@west;
    [In] XY := X@south - X@north;
    [In] YY := Y@south - Y@north;
    [In] AA := 0.250 * (XY * XY + YY * YY);
    [In] BB := 0.250 * (XX * XX + YX * YX);
    [In] CC := 0.125 * (XX * XY + YX * YY);
    [In] RX := AA * (X@east - 2.0 * X + X@west)
             + BB * (X@south - 2.0 * X + X@north)
             - CC * (X@se - X@ne - X@sw + X@nw);
    [In] RY := AA * (Y@east - 2.0 * Y + Y@west)
             + BB * (Y@south - 2.0 * Y + Y@north)
             - CC * (Y@se - Y@ne - Y@sw + Y@nw);
    [In] rxm := max<< abs(RX);
    [In] rym := max<< abs(RY);
    -- tridiagonal-style relaxation: forward elimination down the row
    -- bands of a narrow column strip.  Band b's @north references read
    -- band b-1's freshly written rows, so each sweep is a sequential
    -- wavefront; consecutive sweeps overlap in a pipeline under
    -- asynchronous message passing (row r starts sweep s+1 while row
    -- r+1 still runs sweep s).  These are the "two small loops" whose
    -- cross-loop dependences the paper blames for TOMCATV's limited
    -- pipelining; the SHMEM prototype's heavyweight rendezvous
    -- synchronization couples neighbouring rows and throttles exactly
    -- this cross-sweep overlap.
    for s := 1 to nsolve do
      [Band1] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band1] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band1] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band2] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band2] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band2] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band3] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band3] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band3] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band4] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band4] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band4] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band5] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band5] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band5] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band6] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band6] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band6] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band7] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band7] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band7] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
      [Band8] D  := 1.0 / (4.04 - 1.92 * D@north + 0.035 * D@north * D@north);
      [Band8] RX := (RX + (RX@north + 0.125 * RX@north * D) * D) * 0.985 + 0.002 * D;
      [Band8] RY := (RY + (RY@north + 0.125 * RY@north * D) * D) * 0.985 + 0.002 * D;
    end;
    -- mesh update
    [In] X := X + 0.7 * RX;
    [In] Y := Y + 0.7 * RY;
  end;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile TOMCATV with optional config overrides and optimization."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "tomcatv.zl", merged, opt)
