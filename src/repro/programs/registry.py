"""Registry mapping program names to sources and builders.

Three name families resolve here, and everything downstream — the
engine's job fingerprints (:meth:`repro.engine.Job.fingerprint` hashes
``benchmark_source``), the worker's compile cache, sweeps, frontier
refinement, composition, ``repro serve`` — accepts all of them
uniformly:

* the paper's four whole-program benchmarks (:data:`BENCHMARKS`);
* the classic-kernel corpus (:data:`KERNELS` — Jacobi, red-black
  Gauss-Seidel, a multigrid ladder);
* generated synthetic programs, addressed as ``gen_<seed>`` and
  manufactured on demand by :mod:`repro.programs.generate` (the default
  feature profile; build :func:`~repro.programs.generate.generate_source`
  directly for custom profiles).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.comm import OptimizationConfig
from repro.errors import ExperimentError
from repro.ir.nodes import IRProgram


def _modules():
    # local import to avoid import cycles at package load
    from repro.programs import jacobi, multigrid, rbgs, simple, sp, swm, tomcatv

    return {
        "tomcatv": tomcatv,
        "swm": swm,
        "simple": simple,
        "sp": sp,
        "jacobi": jacobi,
        "rbgs": rbgs,
        "multigrid": multigrid,
    }


#: Names of the paper's four whole-program benchmarks, in Figure 7 order.
BENCHMARKS = ("tomcatv", "swm", "simple", "sp")

#: Names of the classic-kernel corpus (not in the paper; see each module).
KERNELS = ("jacobi", "rbgs", "multigrid")


def available_benchmarks() -> Tuple[str, ...]:
    """Every registered fixed program name (benchmarks then kernels).

    Generated programs (``gen_<seed>``) are not enumerable — any
    non-negative seed is valid — so they are not listed here.
    """
    return BENCHMARKS + KERNELS


def _generated_seed(name: str) -> Optional[int]:
    from repro.programs.generate import generated_seed

    return generated_seed(name) if isinstance(name, str) else None


def validate_benchmark(name: str) -> str:
    """Check that ``name`` resolves (fixed program or ``gen_<seed>``)
    and return it unchanged; raises :class:`ExperimentError` otherwise.
    The CLI uses this as an argparse ``type=``."""
    if name not in _modules() and _generated_seed(name) is None:
        raise ExperimentError(
            f"unknown benchmark {name!r} (valid: "
            f"{', '.join(available_benchmarks())}, or gen_<seed>)"
        )
    return name


def _module(name: str):
    mods = _modules()
    try:
        return mods[name]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark {name!r} (valid: "
            f"{', '.join(available_benchmarks())}, or gen_<seed>)"
        ) from None


def build_benchmark(
    name: str,
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile a registered program by name."""
    seed = _generated_seed(name)
    if seed is not None:
        from repro.programs.generate import generate_program

        return generate_program(seed, config=config, opt=opt)
    return _module(name).build(config=config, opt=opt)


def benchmark_source(name: str) -> str:
    """The ZL source text of a registered program."""
    seed = _generated_seed(name)
    if seed is not None:
        from repro.programs.generate import generate_source

        return generate_source(seed)
    return _module(name).SOURCE


def small_config(name: str) -> Dict[str, int]:
    """A reduced configuration suitable for tests (small mesh, few
    iterations); every program defines one."""
    seed = _generated_seed(name)
    if seed is not None:
        from repro.programs.generate import GEN_SMALL_CONFIG

        return dict(GEN_SMALL_CONFIG)
    return dict(_module(name).SMALL_CONFIG)


def default_config(name: str) -> Dict[str, int]:
    """The full-scale configuration of a registered program."""
    seed = _generated_seed(name)
    if seed is not None:
        from repro.programs.generate import GEN_DEFAULT_CONFIG

        return dict(GEN_DEFAULT_CONFIG)
    return dict(_module(name).DEFAULT_CONFIG)
