"""Registry mapping benchmark names to program modules."""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.errors import ExperimentError
from repro.ir.nodes import IRProgram


def _modules():
    # local import to avoid import cycles at package load
    from repro.programs import simple, sp, swm, tomcatv

    return {
        "tomcatv": tomcatv,
        "swm": swm,
        "simple": simple,
        "sp": sp,
    }


#: Names of the paper's four whole-program benchmarks, in Figure 7 order.
BENCHMARKS = ("tomcatv", "swm", "simple", "sp")


def _module(name: str):
    mods = _modules()
    try:
        return mods[name]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark {name!r} (valid: {', '.join(BENCHMARKS)})"
        ) from None


def build_benchmark(
    name: str,
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile a bundled benchmark by name."""
    return _module(name).build(config=config, opt=opt)


def benchmark_source(name: str) -> str:
    """The ZL source text of a bundled benchmark."""
    return _module(name).SOURCE


def small_config(name: str) -> Dict[str, int]:
    """A reduced configuration suitable for tests (small mesh, few
    iterations); every benchmark module defines one."""
    return dict(_module(name).SMALL_CONFIG)


def default_config(name: str) -> Dict[str, int]:
    """The paper-scale configuration of a benchmark."""
    return dict(_module(name).DEFAULT_CONFIG)
