"""SWM with periodic boundaries — the original model's geometry.

The real shallow-water benchmark runs on a doubly periodic domain; the
paper-aligned :mod:`repro.programs.swm` emulates boundaries with a
filter phase instead, because the paper's count arithmetic is built on
that structure.  This variant uses ZL's wrap shifts (``@@``) to make the
domain a genuine torus: no boundary regions, no special-casing — every
processor, including the mesh edges, exchanges with a neighbour for
every transfer.

It is registered separately from the paper's four benchmarks (it is not
part of the reproduction targets) and serves as the showcase workload
for periodic communication: compare its per-step transfer participation
with the bounded variant's — on the torus *every* rank participates in
*every* transfer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"n": 128, "nsteps": 150}

SMALL_CONFIG: Dict[str, int] = {"n": 16, "nsteps": 3}

SOURCE = """
program swm_periodic;

config n      : integer = 128;
config nsteps : integer = 150;

region R = [1..n, 1..n];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];
direction ne    = [-1,  1];
direction nw    = [-1, -1];
direction se    = [ 1,  1];
direction sw    = [ 1, -1];

var P, U, V, CU, CV, Z, H          : [R] double;
var UNEW, VNEW, PNEW               : [R] double;
var UOLD, VOLD, POLD               : [R] double;
var tdts8, tdtsdx, tdtsdy, alpha   : double;
var pcheck                         : double;

procedure init();
begin
  tdts8  := 0.0120;
  tdtsdx := 0.0090;
  tdtsdy := 0.0090;
  alpha  := 0.0010;
  [R] P := 5000.0 + 50.0 * sin(index1 * 0.049) * cos(index2 * 0.049);
  [R] U := 10.0 * sin(index2 * 0.098);
  [R] V := -10.0 * cos(index1 * 0.098);
  [R] UOLD := U;
  [R] VOLD := V;
  [R] POLD := P;
end;

-- fluxes over the whole torus: no interior region needed
procedure calc1();
begin
  [R] CU := 0.5 * (P@@east + P) * U + 0.05 * (V@@east - V);
  [R] CV := 0.5 * (P@@south + P) * V + 0.05 * (U@@south - U);
  [R] Z  := (V@@west - V) * 0.25 / (P + 1.0);
  [R] H  := P + 0.25 * (U@@north * U@@north + U * U);
end;

procedure calc2();
begin
  [R] UNEW := UOLD + tdts8 * (Z@@se - Z) * (CV@@sw + CV)
            - tdtsdx * (H@@east - H);
  [R] VNEW := VOLD - tdts8 * (Z@@ne - Z) * (CU@@nw + CU)
            - tdtsdy * (H@@south - H);
  [R] PNEW := POLD - tdtsdx * (CU@@west - CU) - tdtsdy * (CV@@north - CV);
end;

procedure calc3();
begin
  [R] UOLD := U + alpha * (UNEW - 2.0 * U + UOLD);
  [R] VOLD := V + alpha * (VNEW - 2.0 * V + VOLD);
  [R] POLD := P + alpha * (PNEW - 2.0 * P + POLD);
  [R] U := UNEW;
  [R] V := VNEW;
  [R] P := PNEW;
end;

procedure main();
begin
  init();
  for step := 1 to nsteps do
    calc1();
    calc2();
    calc3();
  end;
  [R] pcheck := +<< P;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile periodic SWM with optional config overrides."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "swm_periodic.zl", merged, opt)
