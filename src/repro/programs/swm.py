"""SWM — shallow-water weather prediction model, in ZL.

The paper's Table 2 benchmark (512x512, 64 processors).  The model is the
classic Sadourny finite-difference shallow-water scheme: per time step,
compute mass fluxes / potential vorticity (``calc1``), advance the
velocity and pressure fields (``calc2``), apply Robert-Asselin time
smoothing (``calc3``), and run a Shapiro-style filter (``shapiro``).
Each phase is a procedure, and procedure call sites bound basic blocks —
so the optimizer sees four blocks per step, as the phase structure of the
original gives it.

Communication structure and why it matches the paper's data:

* within every block, each shift direction appears in **one statement
  only**, with its arrays grouped in that statement.  Combination then
  merges exactly the same transfers under *both* heuristics — the
  max-latency heuristic loses nothing, reproducing Table 2's identical
  counts for ``pl`` and ``pl with max latency``;
* the filter phase re-reads shifted references (``U@south``, ``V@south``,
  ``P@east``, ``H@east``) in consecutive statements: redundancy removal
  eliminates four transfers per step — dynamically, not just statically
  (the paper's SWM loses ~16% of dynamic transfers to rr);
* spans are short (data is produced in the *previous* block), so
  pipelining has "limited space for exposing the communication latency",
  and the benefit of SHMEM comes from its lower software overhead — the
  program is load-balanced, so one-way communication only helps.

Per-step transfer counts (any interior processor): baseline 22, rr 18,
cc 14, max-latency 14.  The paper's per-step counts are 43, 36, 30, 30 —
about twice ours, with matching reduction ratios (rr 0.82 vs paper 0.84;
cc 0.64 vs paper 0.70).

The default mesh is 128x128 rather than the paper's 512x512: with the
simulator's calibrated compute rate, 128x128 gives the same
communication-to-computation balance on 64 processors that the paper's
run exhibits (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comm import OptimizationConfig
from repro.ir.nodes import IRProgram
from repro.programs.common import compile_source

DEFAULT_CONFIG: Dict[str, int] = {"n": 128, "nsteps": 150}

#: Reduced problem for tests.
SMALL_CONFIG: Dict[str, int] = {"n": 16, "nsteps": 3}

SOURCE = """
program swm;

config n      : integer = 128;
config nsteps : integer = 150;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];
direction ne    = [-1,  1];
direction nw    = [-1, -1];
direction se    = [ 1,  1];
direction sw    = [ 1, -1];

var P, U, V, CU, CV, Z, H          : [R] double;
var UNEW, VNEW, PNEW               : [R] double;
var UOLD, VOLD, POLD               : [R] double;
var UB, VB, PB, HB                 : [R] double;
var tdts8, tdtsdx, tdtsdy, alpha   : double;
var pcheck                         : double;

procedure init();
begin
  tdts8  := 0.0120;
  tdtsdx := 0.0090;
  tdtsdy := 0.0090;
  alpha  := 0.0010;
  [R] P := 5000.0 + 50.0 * sin(index1 * 0.049) * cos(index2 * 0.049);
  [R] U := 10.0 * sin(index2 * 0.098);
  [R] V := -10.0 * cos(index1 * 0.098);
  [R] UOLD := U;
  [R] VOLD := V;
  [R] POLD := P;
end;

-- mass fluxes, potential vorticity and height: each direction appears in
-- exactly one statement, with both its arrays referenced there
procedure calc1();
begin
  [In] CU := 0.5 * (P@east + P) * U + 0.05 * (V@east - V);
  [In] CV := 0.5 * (P@south + P) * V + 0.05 * (U@south - U);
  [In] Z  := (V@west - V) * 0.25 / (P + 1.0);
  [In] H  := P + 0.25 * (U@north * U@north + U * U);
end;

-- advance the prognostic fields: eight transfers, each direction once
procedure calc2();
begin
  [In] UNEW := UOLD + tdts8 * (Z@se - Z) * (CV@sw + CV)
             - tdtsdx * (H@east - H);
  [In] VNEW := VOLD - tdts8 * (Z@ne - Z) * (CU@nw + CU)
             - tdtsdy * (H@south - H);
  [In] PNEW := POLD - tdtsdx * (CU@west - CU) - tdtsdy * (CV@north - CV);
end;

-- Robert-Asselin time smoothing and field rotation: no communication
procedure calc3();
begin
  [In] UOLD := U + alpha * (UNEW - 2.0 * U + UOLD);
  [In] VOLD := V + alpha * (VNEW - 2.0 * V + VOLD);
  [In] POLD := P + alpha * (PNEW - 2.0 * P + POLD);
  [In] U := UNEW;
  [In] V := VNEW;
  [In] P := PNEW;
end;

-- Shapiro-style smoothing filter: the second statement of each pair
-- re-reads the transfers of the first — redundant communication that
-- removal eliminates on every step
procedure shapiro();
begin
  [In] UB := U@south * 0.5 + 0.25 * V@south;
  [In] VB := V@south * 0.5 - 0.25 * U@south;
  [In] U  := U * 0.999 + 0.001 * UB;
  [In] V  := V * 0.999 + 0.001 * VB;
  [In] PB := P@east * 0.5 + 0.25 * H@east;
  [In] HB := H@east * 0.5 - 0.25 * P@east;
  [In] P  := P * 0.999 + 0.001 * PB;
  [In] POLD := POLD * 0.999 + 0.001 * HB;
end;

procedure main();
begin
  init();
  for step := 1 to nsteps do
    calc1();
    calc2();
    calc3();
    shapiro();
  end;
  [In] pcheck := +<< P;
end;
"""


def build(
    config: Optional[Dict[str, float]] = None,
    opt: Optional[OptimizationConfig] = None,
) -> IRProgram:
    """Compile SWM with optional config overrides and optimization."""
    merged = dict(DEFAULT_CONFIG)
    if config:
        merged.update(config)
    return compile_source(SOURCE, "swm.zl", merged, opt)
