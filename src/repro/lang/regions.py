"""Regions and directions — the index-set algebra of ZL.

A *region* is a dense, rectangular set of integer index vectors, written in
ZL source as ``region R = [1..n, 1..n];``.  Bounds are inclusive on both
ends, following ZPL convention.  Regions name the domain of arrays and the
index set over which whole-array statements execute.

A *direction* is a small constant integer offset vector, written
``direction east = [0, 1];``.  Directions are the right operand of the
``@`` shift operator: over region ``R``, the expression ``A@east`` denotes,
for each index ``(i, j)`` in ``R``, the element ``A[i, j+1]``.

Both objects are immutable value types.  The region algebra implemented
here (shift, intersection, containment) is exactly what the compiler needs
to decide *where communication is required* and what the runtime needs to
compute per-processor block intersections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Direction:
    """A constant offset vector, e.g. ``east = (0, 1)``.

    Attributes
    ----------
    name:
        Source-level name.  Two directions with different names but the
        same offsets are interchangeable for communication purposes; the
        compiler keys communication on :attr:`offsets`, not on the name.
    offsets:
        The per-dimension integer offsets.
    """

    name: str
    offsets: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "offsets", tuple(int(o) for o in self.offsets))

    @property
    def rank(self) -> int:
        """Number of dimensions of the offset vector."""
        return len(self.offsets)

    @property
    def is_zero(self) -> bool:
        """True if the direction does not move at all (no communication)."""
        return all(o == 0 for o in self.offsets)

    def negated(self) -> "Direction":
        """The opposite direction (used to find the send partner: a
        processor *receives* its fluff from the neighbour in direction
        ``d`` and *sends* its own boundary to the neighbour in ``-d``)."""
        return Direction(f"-{self.name}", tuple(-o for o in self.offsets))

    def sign(self) -> Tuple[int, ...]:
        """Unit-magnitude version of the offsets; identifies the grid
        neighbour involved in the transfer."""
        return tuple((o > 0) - (o < 0) for o in self.offsets)

    def __str__(self) -> str:
        return f"{self.name}{list(self.offsets)}"


@dataclass(frozen=True)
class Region:
    """A dense rectangular index set with inclusive bounds.

    Attributes
    ----------
    name:
        Source-level name (synthesized regions use generated names).
    lows / highs:
        Per-dimension inclusive lower/upper bounds.  An empty region is
        represented by any dimension with ``high < low``.
    """

    name: str
    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lows", tuple(int(v) for v in self.lows))
        object.__setattr__(self, "highs", tuple(int(v) for v in self.highs))
        if len(self.lows) != len(self.highs):
            raise ValueError(
                f"region {self.name!r}: rank mismatch between lows "
                f"{self.lows} and highs {self.highs}"
            )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Extent in each dimension (zero-clamped)."""
        return tuple(max(0, h - l + 1) for l, h in zip(self.lows, self.highs))

    @property
    def size(self) -> int:
        """Total number of index vectors in the region."""
        n = 1
        for e in self.shape:
            n *= e
        return n

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def bounds(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(low, high)`` pairs per dimension."""
        return iter(zip(self.lows, self.highs))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def shifted(self, direction: Direction) -> "Region":
        """The image of this region under the direction's offset: the set
        of indices actually *read* by ``A@d`` executed over this region."""
        self._check_rank(direction.rank, "shift")
        return Region(
            f"{self.name}@{direction.name}",
            tuple(l + o for l, o in zip(self.lows, direction.offsets)),
            tuple(h + o for h, o in zip(self.highs, direction.offsets)),
        )

    def intersect(self, other: "Region") -> "Region":
        """Largest region contained in both operands (possibly empty)."""
        self._check_rank(other.rank, "intersect")
        return Region(
            f"({self.name}^{other.name})",
            tuple(max(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(min(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def contains(self, other: "Region") -> bool:
        """True if every index of ``other`` is in ``self``.  An empty
        ``other`` is contained in anything."""
        self._check_rank(other.rank, "contains")
        if other.is_empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lows, other.lows, other.highs, self.highs)
        )

    def contains_index(self, index: Sequence[int]) -> bool:
        """True if the single index vector lies in the region."""
        self._check_rank(len(index), "contains_index")
        return all(l <= i <= h for l, i, h in zip(self.lows, index, self.highs))

    def expanded(self, width: int) -> "Region":
        """Region grown by ``width`` on every face (used for fluff
        allocation)."""
        return Region(
            f"{self.name}+{width}",
            tuple(l - width for l in self.lows),
            tuple(h + width for h in self.highs),
        )

    # ------------------------------------------------------------------
    # conversion helpers used by the runtime
    # ------------------------------------------------------------------
    def slices_within(self, origin: Sequence[int]) -> Tuple[slice, ...]:
        """NumPy slices selecting this region inside a buffer whose element
        ``[0, 0, ...]`` corresponds to global index ``origin``.

        The caller is responsible for ensuring the buffer is large enough;
        the runtime validates this with explicit fluff-width checks.
        """
        self._check_rank(len(origin), "slices_within")
        return tuple(
            slice(l - o, h - o + 1) for l, h, o in zip(self.lows, self.highs, origin)
        )

    def _check_rank(self, other_rank: int, op: str) -> None:
        if other_rank != self.rank:
            raise ValueError(
                f"rank mismatch in {op}: region {self.name!r} has rank "
                f"{self.rank}, operand has rank {other_rank}"
            )

    def __str__(self) -> str:
        dims = ", ".join(f"{l}..{h}" for l, h in self.bounds())
        return f"[{dims}]"


def bounding_region(name: str, regions: Sequence[Region]) -> Optional[Region]:
    """Smallest region containing all of ``regions`` (None for empty input).

    Used by the compiler to size combined-message buffers and by layout
    code to derive the global problem extent.
    """
    regions = [r for r in regions if not r.is_empty]
    if not regions:
        return None
    rank = regions[0].rank
    for r in regions:
        if r.rank != rank:
            raise ValueError("bounding_region: mixed ranks")
    lows = tuple(min(r.lows[d] for r in regions) for d in range(rank))
    highs = tuple(max(r.highs[d] for r in regions) for d in range(rank))
    return Region(name, lows, highs)
