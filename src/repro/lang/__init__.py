"""Language-level objects shared by the front end, IR, and runtime.

The ZL language (our ZPL-like array sublanguage) is built around three
value-level concepts that exist both at compile time and at run time:

* :class:`~repro.lang.regions.Region` — a dense rectangular index set, the
  domain over which whole-array statements execute;
* :class:`~repro.lang.regions.Direction` — a constant integer offset vector,
  the right operand of the ``@`` shift operator;
* scalar types (:mod:`repro.lang.types`).

These are deliberately independent of the compiler so the runtime and the
machine simulator can use them without importing front-end modules.
"""

from repro.lang.regions import Direction, Region
from repro.lang.types import BOOLEAN, DOUBLE, INTEGER, ScalarType

__all__ = [
    "Region",
    "Direction",
    "ScalarType",
    "DOUBLE",
    "INTEGER",
    "BOOLEAN",
]
