"""Scalar types of the ZL language.

ZL has three scalar types: ``double`` (IEEE 754 binary64), ``integer``
(a 64-bit signed integer; used for config constants and loop variables),
and ``boolean``.  Arrays always hold doubles in the benchmark programs,
but the type system permits integer arrays as well.

The types are represented as interned :class:`ScalarType` instances so that
identity comparison works (``t is DOUBLE``) and so they can carry their
NumPy dtype and per-element size for the runtime and the communication
cost model (the paper measures message sizes in doubles; 1 double = 8
bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScalarType:
    """An interned ZL scalar type.

    Attributes
    ----------
    name:
        The keyword naming the type in ZL source (``"double"``, ...).
    dtype:
        The NumPy dtype used by the runtime for values of this type.
    size_bytes:
        Per-element size in bytes; the unit used by the communication cost
        model when converting element counts to message sizes.
    """

    name: str
    dtype: np.dtype
    size_bytes: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_numeric(self) -> bool:
        """True for types that participate in arithmetic."""
        return self.name in ("double", "integer")


DOUBLE = ScalarType("double", np.dtype(np.float64), 8)
INTEGER = ScalarType("integer", np.dtype(np.int64), 8)
BOOLEAN = ScalarType("boolean", np.dtype(np.bool_), 1)

_BY_NAME = {t.name: t for t in (DOUBLE, INTEGER, BOOLEAN)}


def type_by_name(name: str) -> ScalarType:
    """Look up a scalar type by its ZL keyword.

    Raises
    ------
    KeyError
        If ``name`` is not a ZL type keyword.
    """
    return _BY_NAME[name]


def join(a: ScalarType, b: ScalarType) -> ScalarType:
    """Type of a binary arithmetic expression over operands of types
    ``a`` and ``b`` (the usual numeric promotion: integer op double is
    double)."""
    if not (a.is_numeric and b.is_numeric):
        raise TypeError(f"no arithmetic join for {a} and {b}")
    if a is DOUBLE or b is DOUBLE:
        return DOUBLE
    return INTEGER
