"""Exception hierarchy for the repro package.

Every error raised by the compiler, runtime, or harness derives from
:class:`ReproError`, so callers can catch one type.  Compiler-side errors
carry a :class:`~repro.frontend.source.SourceLocation` when one is known,
and render it in the message in the conventional ``file:line:col`` form.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceError(ReproError):
    """An error attributable to a location in ZL source code.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    location:
        Optional ``SourceLocation`` (duck-typed: anything with ``filename``,
        ``line`` and ``column`` attributes).  When present it is prefixed to
        the message.
    """

    def __init__(self, message: str, location=None) -> None:
        self.bare_message = message
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised by the lexer on malformed input (bad characters, numbers)."""


class ParseError(SourceError):
    """Raised by the parser on syntactically invalid ZL source."""


class SemanticError(SourceError):
    """Raised by semantic analysis: undeclared names, region/shape
    violations, shifted references escaping an array's declared domain,
    type mismatches, and similar static errors."""


class LoweringError(ReproError):
    """Raised when a checked AST cannot be lowered to the SPMD IR.

    This indicates an internal inconsistency (semantic analysis should have
    rejected the program) and is therefore not a :class:`SourceError`.
    """


class OptimizationError(ReproError):
    """Raised when a communication-optimization pass detects that its
    preconditions are violated (e.g. a pass handed a schedule that was not
    produced by naive generation)."""


class MachineError(ReproError):
    """Raised for invalid machine configurations: unknown communication
    library, non-positive processor counts, unbindable IRONMAN calls."""


class RuntimeFault(ReproError):
    """Raised by the SPMD runtime for dynamic errors: reading fluff that was
    never filled (when strict checking is enabled), shifted access outside
    the allocated fluff width, mismatched grids."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for unknown experiment keys or
    benchmark names."""


class BaselineError(ReproError):
    """Raised by :mod:`repro.obs.baseline` for unreadable, malformed, or
    unknown-schema baseline/telemetry documents."""
