"""Pseudo-C emission for lowered (and optimized) programs.

The ZPL compiler emitted SPMD ANSI C; array statements become loop nests
only *after* communication generation, which is why the paper's Figure 7
reports benchmark sizes as "final output C code, excluding communication"
line counts.  This printer reproduces that view: it renders the IR as
C-like text with each array statement expanded to a loop nest over its
region and each IRONMAN call as a single line, and it can count lines
including or excluding communication.

The output is documentation/diagnostics — the runtime executes the IR
directly — but the printer is also the ground truth for *static*
communication counts being visible in program text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ir import nodes as ir

_INDENT = "  "


@dataclass
class EmittedProgram:
    """Pseudo-C text plus line accounting."""

    text: str
    total_lines: int
    comm_lines: int

    @property
    def lines_excluding_comm(self) -> int:
        """The paper's Figure 7 metric."""
        return self.total_lines - self.comm_lines


class _Emitter:
    def __init__(self, program: ir.IRProgram) -> None:
        self.program = program
        self.lines: List[str] = []
        self.comm_line_count = 0
        self.depth = 0
        self._loop_counter = 0

    def _put(self, text: str, is_comm: bool = False) -> None:
        self.lines.append(f"{_INDENT * self.depth}{text}")
        if is_comm:
            self.comm_line_count += 1

    # -- program ----------------------------------------------------------
    def run(self) -> EmittedProgram:
        p = self.program
        self._put(f"/* program {p.name} -- SPMD ANSI C (pseudo) */")
        self._put("#include \"ironman.h\"")
        self._put("#include \"zl_runtime.h\"")
        self._put("")
        for name, (region, fluff) in sorted(p.arrays.items()):
            dims = "".join(
                f"[{hi - lo + 1 + 2 * f}]"
                for (lo, hi), f in zip(region.bounds(), fluff)
            )
            self._put(f"static double {name}{dims};  /* over {region} */")
        for name in p.scalars:
            self._put(f"static double {name};")
        self._put("")
        self._put("void zl_main(void) {")
        self.depth += 1
        self._emit_body(p.body)
        self.depth -= 1
        self._put("}")
        text = "\n".join(self.lines) + "\n"
        return EmittedProgram(
            text=text,
            total_lines=len(self.lines),
            comm_lines=self.comm_line_count,
        )

    # -- statements --------------------------------------------------------
    def _emit_body(self, body: List[ir.IRStmt]) -> None:
        for stmt in body:
            self._emit_stmt(stmt)

    def _emit_stmt(self, stmt: ir.IRStmt) -> None:
        if isinstance(stmt, ir.Block):
            for s in stmt.stmts:
                self._emit_simple(s)
        elif isinstance(stmt, ir.ForLoop):
            lo = emit_expr(stmt.low)
            hi = emit_expr(stmt.high)
            step = emit_expr(stmt.step) if stmt.step is not None else "1"
            self._put(
                f"for ({stmt.var} = {lo}; {stmt.var} <= {hi}; "
                f"{stmt.var} += {step}) {{"
            )
            self.depth += 1
            self._emit_body(stmt.body)
            self.depth -= 1
            self._put("}")
        elif isinstance(stmt, ir.RepeatLoop):
            self._put("do {")
            self.depth += 1
            self._emit_body(stmt.body)
            self.depth -= 1
            self._put(f"}} while (!({emit_expr(stmt.cond)}));")
        elif isinstance(stmt, ir.IfStmt):
            first = True
            for cond, body in stmt.arms:
                kw = "if" if first else "} else if"
                self._put(f"{kw} ({emit_expr(cond)}) {{")
                self.depth += 1
                self._emit_body(body)
                self.depth -= 1
                first = False
            if stmt.orelse:
                self._put("} else {")
                self.depth += 1
                self._emit_body(stmt.orelse)
                self.depth -= 1
            self._put("}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot emit {stmt!r}")

    def _emit_simple(self, stmt: ir.SimpleStmt) -> None:
        if isinstance(stmt, ir.CommCall):
            args = ", ".join(stmt.desc.arrays)
            self._put(
                f"{stmt.kind.name}({args}, {stmt.desc.direction.name});"
                f"  /* comm #{stmt.desc.id} */",
                is_comm=True,
            )
        elif isinstance(stmt, ir.ArrayAssign):
            self._emit_array_assign(stmt)
        elif isinstance(stmt, ir.ScalarAssign):
            self._put(f"{stmt.target} = {emit_expr(stmt.expr)};")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot emit {stmt!r}")

    def _emit_array_assign(self, stmt: ir.ArrayAssign) -> None:
        rank = stmt.region.rank
        self._loop_counter += 1
        idx = [f"_i{d + 1}" for d in range(rank)]
        self._put(f"/* [{stmt.region.name}] {stmt.target} := ... */")
        for d, (lo, hi) in enumerate(stmt.region.bounds()):
            v = idx[d]
            self._put(f"for ({v} = {lo}; {v} <= {hi}; {v}++) {{")
            self.depth += 1
        subscript = "".join(f"[{v}]" for v in idx)
        self._put(f"{stmt.target}{subscript} = {emit_expr(stmt.expr, idx)};")
        for _ in range(rank):
            self.depth -= 1
            self._put("}")


def emit_expr(expr: ir.IRExpr, idx: List[str] | None = None) -> str:
    """Render an IR expression as C-like text.

    ``idx`` names the loop indices of the enclosing array-statement nest
    (None in scalar context)."""
    if isinstance(expr, ir.IRConst):
        if isinstance(expr.value, bool):
            return "1" if expr.value else "0"
        if isinstance(expr.value, float):
            return repr(expr.value)
        return str(expr.value)
    if isinstance(expr, ir.IRScalarRead):
        return expr.name
    if isinstance(expr, ir.IRIndex):
        if idx is None:
            return f"index{expr.dim}"
        return idx[expr.dim - 1]
    if isinstance(expr, ir.IRArrayRead):
        if idx is None:
            return expr.array
        offsets = (
            expr.direction.offsets if expr.direction is not None else (0,) * len(idx)
        )
        parts = []
        for v, off in zip(idx, offsets):
            if off == 0:
                sub = v
            elif off > 0:
                sub = f"{v}+{off}"
            else:
                sub = f"{v}{off}"
            if expr.wrap and off != 0:
                sub = f"ZL_WRAP({sub})"
            parts.append(f"[{sub}]")
        return f"{expr.array}{''.join(parts)}"
    if isinstance(expr, ir.IRBin):
        op = {"and": "&&", "or": "||", "=": "==", "^": "**"}.get(expr.op, expr.op)
        return f"({emit_expr(expr.lhs, idx)} {op} {emit_expr(expr.rhs, idx)})"
    if isinstance(expr, ir.IRUn):
        op = "!" if expr.op == "not" else expr.op
        return f"({op}{emit_expr(expr.operand, idx)})"
    if isinstance(expr, ir.IRIntrinsic):
        args = ", ".join(emit_expr(a, idx) for a in expr.args)
        func = {"abs": "fabs", "ln": "log"}.get(expr.func, expr.func)
        return f"{func}({args})"
    if isinstance(expr, ir.IRReduce):
        return f"ZL_REDUCE_{expr.op.upper() if expr.op.isalpha() else 'SUM'}({emit_expr(expr.operand, idx)})"
    raise TypeError(f"cannot emit expression {expr!r}")  # pragma: no cover


def emit_c(program: ir.IRProgram) -> EmittedProgram:
    """Render a lowered program as pseudo-C with line accounting."""
    return _Emitter(program).run()
