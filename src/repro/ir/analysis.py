"""Def/use analysis within a basic block.

All three communication optimizations reason about the same three facts
inside one :class:`~repro.ir.nodes.Block`:

* which statement *writes* which array,
* which statement *reads* which array with which shift,
* where a given array was last written before a given point.

:class:`BlockInfo` computes these once per block over the *core*
statements (communication calls excluded), indexing statements by their
position in :meth:`Block.core_stmts`.  Optimization passes place
communication relative to these core positions and only materialize
interleaved call lists at the end (see :mod:`repro.comm.schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import nodes as ir
from repro.lang.regions import Direction, Region


@dataclass(frozen=True)
class ShiftedUse:
    """One shifted array read in a statement.

    ``stmt_index`` is the position of the using statement among the core
    statements of the block; ``region`` is the region over which the use
    executes (the statement's region scope, or the reduction's region when
    the use sits inside a reduce); ``wrap`` marks a periodic read."""

    stmt_index: int
    array: str
    direction: Direction
    region: Region
    wrap: bool = False

    @property
    def key(self) -> Tuple[str, Tuple[int, ...], bool]:
        """Communication identity: array name + direction *offsets* (two
        direction names with equal offsets are the same communication) +
        the wrap flag (a periodic and a non-periodic shift move different
        data)."""
        return (self.array, self.direction.offsets, self.wrap)


def _expr_shifted_uses(
    expr: ir.IRExpr, region: Optional[Region]
) -> List[Tuple[str, Direction, Region, bool]]:
    """Shifted reads in ``expr``; ``region`` is the enclosing execution
    region (None only outside reductions in scalar context, where semantic
    analysis guarantees no shifted reads occur)."""
    out: List[Tuple[str, Direction, Region, bool]] = []
    if isinstance(expr, ir.IRArrayRead):
        if expr.is_shifted:
            assert region is not None, "shifted read outside a region"
            out.append((expr.array, expr.direction, region, expr.wrap))
        return out
    if isinstance(expr, ir.IRReduce):
        return _expr_shifted_uses(expr.operand, expr.region)
    for child in ir.expr_children(expr):
        out.extend(_expr_shifted_uses(child, region))
    return out


def stmt_shifted_uses(
    stmt: ir.IRStmt, stmt_index: int
) -> List[ShiftedUse]:
    """All shifted uses of a core statement, in textual order."""
    if isinstance(stmt, ir.ArrayAssign):
        raw = _expr_shifted_uses(stmt.expr, stmt.region)
    elif isinstance(stmt, ir.ScalarAssign):
        raw = _expr_shifted_uses(stmt.expr, None)
    else:
        return []
    return [
        ShiftedUse(stmt_index, array, direction, region, wrap)
        for array, direction, region, wrap in raw
    ]


def stmt_arrays_written(stmt: ir.IRStmt) -> Set[str]:
    """Arrays written by a core statement."""
    if isinstance(stmt, ir.ArrayAssign):
        return {stmt.target}
    return set()


def stmt_arrays_read(stmt: ir.IRStmt) -> Set[str]:
    """Arrays read (shifted or not) by a core statement."""
    if isinstance(stmt, (ir.ArrayAssign, ir.ScalarAssign)):
        return ir.arrays_read(stmt.expr)
    return set()


class BlockInfo:
    """Precomputed def/use facts for one basic block.

    Positions refer to the block's core statements: position ``i`` is
    *before* core statement ``i``; position ``len(core)`` is the end of
    the block.
    """

    def __init__(self, block: ir.Block) -> None:
        self.block = block
        self.core: List[ir.IRStmt] = block.core_stmts()
        self.writes: List[Set[str]] = [stmt_arrays_written(s) for s in self.core]
        self.reads: List[Set[str]] = [stmt_arrays_read(s) for s in self.core]
        self.shifted_uses: List[ShiftedUse] = []
        for i, stmt in enumerate(self.core):
            self.shifted_uses.extend(stmt_shifted_uses(stmt, i))

    # -- queries -----------------------------------------------------------
    def last_write_before(self, array: str, position: int) -> int:
        """Index of the last core statement strictly before ``position``
        that writes ``array``; -1 if none in this block."""
        for j in range(min(position, len(self.core)) - 1, -1, -1):
            if array in self.writes[j]:
                return j
        return -1

    def first_write_at_or_after(self, array: str, position: int) -> int:
        """Index of the first core statement at or after ``position`` that
        writes ``array``; ``len(core)`` if none."""
        for j in range(max(position, 0), len(self.core)):
            if array in self.writes[j]:
                return j
        return len(self.core)

    def written_between(self, array: str, start: int, end: int) -> bool:
        """True if ``array`` is written by any core statement with index in
        ``[start, end)``."""
        return any(
            array in self.writes[j]
            for j in range(max(start, 0), min(end, len(self.core)))
        )

    def uses_by_key(
        self,
    ) -> Dict[Tuple[str, Tuple[int, ...], bool], List[ShiftedUse]]:
        """Group the block's shifted uses by communication identity,
        preserving textual order inside each group."""
        groups: Dict[Tuple[str, Tuple[int, ...]], List[ShiftedUse]] = {}
        for use in self.shifted_uses:
            groups.setdefault(use.key, []).append(use)
        return groups
