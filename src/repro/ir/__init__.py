"""The SPMD intermediate representation.

Lowering (:mod:`repro.ir.build`) turns a checked AST into a tree of IR
nodes in which:

* every array statement carries its resolved :class:`~repro.lang.Region`
  scope and resolved :class:`~repro.lang.Direction` objects — no symbol
  table is needed downstream;
* procedure calls are inlined (ZL procedures take no arguments, so
  inlining is pure splicing);
* consecutive simple statements are grouped into :class:`~repro.ir.nodes.Block`
  nodes — the *source-level basic blocks* that bound the communication
  optimizer's scope, exactly as in the paper;
* no communication exists yet.  Communication is introduced by
  :mod:`repro.comm.generation` and manipulated by the optimization passes
  as explicit IRONMAN call statements inside blocks.
"""

from repro.ir.build import lower
from repro.ir.nodes import (
    ArrayAssign,
    Block,
    CommCall,
    ForLoop,
    IfStmt,
    IRProgram,
    RepeatLoop,
    ScalarAssign,
)
from repro.ir.printer import emit_c

__all__ = [
    "lower",
    "IRProgram",
    "Block",
    "ArrayAssign",
    "ScalarAssign",
    "CommCall",
    "ForLoop",
    "RepeatLoop",
    "IfStmt",
    "emit_c",
]
