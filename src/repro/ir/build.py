"""Lowering: checked AST -> SPMD IR.

The lowering pass:

* resolves every name against the symbol table (regions, directions,
  arrays, scalars, configs, loop variables) so IR nodes are
  self-contained;
* flattens region scopes onto individual array statements (region scope
  is a per-statement attribute, *not* control flow — a scope boundary
  does not end a basic block);
* inlines procedure calls (ZL procedures are parameterless, so inlining
  is body splicing; semantic analysis already rejected recursion);
* groups maximal runs of simple statements into :class:`~repro.ir.nodes.Block`
  basic blocks, with ``for``/``repeat``/``if`` as block boundaries.

No communication is generated here; see :mod:`repro.comm.generation`.
"""

from __future__ import annotations

from typing import List

from repro.errors import LoweringError
from repro.frontend import ast
from repro.frontend.semantic import INDEX_BUILTINS, ProgramInfo
from repro.frontend.symbols import ArraySymbol, ConfigSymbol, ScalarSymbol
from repro.ir import nodes as ir
from repro.lang.regions import Region


class _Lowerer:
    def __init__(self, info: ProgramInfo) -> None:
        self.info = info
        self.symbols = info.symbols
        self._region_stack: List[Region] = []
        self._loop_vars: List[str] = []
        # output state: finished statements plus the open basic block
        self._out: List[ir.IRStmt] = []
        self._current: List[ir.SimpleStmt] = []

    # -- block accumulation ------------------------------------------------
    def _emit_simple(self, stmt: ir.SimpleStmt) -> None:
        self._current.append(stmt)

    def _flush(self) -> None:
        if self._current:
            self._out.append(ir.Block(self._current))
            self._current = []

    def _emit_structured(self, stmt: ir.IRStmt) -> None:
        self._flush()
        self._out.append(stmt)

    def _capture_body(self, stmts: List[ast.Stmt]) -> List[ir.IRStmt]:
        """Lower ``stmts`` into a fresh statement list (used for loop and
        branch bodies)."""
        saved_out, saved_current = self._out, self._current
        self._out, self._current = [], []
        try:
            self._lower_stmts(stmts)
            self._flush()
            return self._out
        finally:
            self._out, self._current = saved_out, saved_current

    # -- entry ----------------------------------------------------------------
    def run(self) -> ir.IRProgram:
        main = self.info.program.procedures[self.info.program.main]
        self._lower_stmts(main.body)
        self._flush()
        arrays = {
            name: (sym.region, self.info.fluff_widths[name])
            for name, sym in self.symbols.arrays.items()
        }
        return ir.IRProgram(
            name=self.info.name,
            body=self._out,
            arrays=arrays,
            scalars=sorted(self.symbols.scalars),
            config_values=dict(self.info.config_values),
        )

    # -- statements --------------------------------------------------------------
    def _lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.RegionScope):
            if stmt.region:
                self._region_stack.append(
                    self.symbols.regions[stmt.region].region
                )
                try:
                    self._lower_stmts(stmt.body)
                finally:
                    self._region_stack.pop()
            else:
                self._lower_stmts(stmt.body)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.CallStmt):
            proc = self.info.program.procedures[stmt.proc]
            # inline: splice the body in the current context (the callee
            # sees the caller's region scope, as in ZPL's dynamic scoping).
            # A call site is control flow at the source level, so it bounds
            # the basic blocks on both sides — the communication optimizer
            # never reaches across a procedure boundary, exactly as in the
            # paper's compiler.
            self._flush()
            self._lower_stmts(proc.body)
            self._flush()
        elif isinstance(stmt, ast.For):
            body = self._with_loop_var(stmt.var, stmt.body)
            self._emit_structured(
                ir.ForLoop(
                    var=stmt.var,
                    low=self._lower_scalar(stmt.low),
                    high=self._lower_scalar(stmt.high),
                    step=(
                        self._lower_scalar(stmt.step)
                        if stmt.step is not None
                        else None
                    ),
                    body=body,
                )
            )
        elif isinstance(stmt, ast.Repeat):
            body = self._capture_body(stmt.body)
            self._emit_structured(
                ir.RepeatLoop(body=body, cond=self._lower_scalar(stmt.cond))
            )
        elif isinstance(stmt, ast.If):
            arms = [
                (self._lower_scalar(cond), self._capture_body(body))
                for cond, body in stmt.arms
            ]
            orelse = self._capture_body(stmt.orelse)
            self._emit_structured(ir.IfStmt(arms=arms, orelse=orelse))
        else:  # pragma: no cover - semantic analysis rejects everything else
            raise LoweringError(f"cannot lower statement {stmt!r}")

    def _with_loop_var(self, var: str, body: List[ast.Stmt]) -> List[ir.IRStmt]:
        self._loop_vars.append(var)
        try:
            return self._capture_body(body)
        finally:
            self._loop_vars.pop()

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = self.symbols.lookup_any(stmt.target)
        if isinstance(target, ArraySymbol):
            if not self._region_stack:  # pragma: no cover - checked earlier
                raise LoweringError(
                    f"array statement for {stmt.target!r} has no region scope"
                )
            region = self._region_stack[-1]
            self._emit_simple(
                ir.ArrayAssign(
                    region=region,
                    target=stmt.target,
                    expr=self._lower_parallel(stmt.value),
                )
            )
        elif isinstance(target, ScalarSymbol):
            self._emit_simple(
                ir.ScalarAssign(
                    target=stmt.target, expr=self._lower_scalar(stmt.value)
                )
            )
        else:  # pragma: no cover - checked earlier
            raise LoweringError(f"bad assignment target {stmt.target!r}")

    # -- expressions -----------------------------------------------------------
    def _lower_parallel(self, expr: ast.Expr) -> ir.IRExpr:
        if isinstance(expr, ast.IntLit):
            return ir.IRConst(expr.value)
        if isinstance(expr, ast.FloatLit):
            return ir.IRConst(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ir.IRConst(expr.value)
        if isinstance(expr, ast.NameRef):
            return self._lower_name(expr)
        if isinstance(expr, ast.ShiftRef):
            return ir.IRArrayRead(
                expr.array,
                self.symbols.directions[expr.direction].direction,
                wrap=expr.wrap,
            )
        if isinstance(expr, ast.BinOp):
            return ir.IRBin(
                expr.op,
                self._lower_parallel(expr.lhs),
                self._lower_parallel(expr.rhs),
            )
        if isinstance(expr, ast.UnOp):
            return ir.IRUn(expr.op, self._lower_parallel(expr.operand))
        if isinstance(expr, ast.Call):
            func = "abs" if expr.func == "fabs" else expr.func
            return ir.IRIntrinsic(
                func, [self._lower_parallel(a) for a in expr.args]
            )
        raise LoweringError(f"cannot lower parallel expression {expr!r}")

    def _lower_scalar(self, expr: ast.Expr) -> ir.IRExpr:
        if isinstance(expr, ast.Reduce):
            if not self._region_stack:  # pragma: no cover - checked earlier
                raise LoweringError("reduction outside any region scope")
            return ir.IRReduce(
                expr.op,
                self._lower_parallel(expr.operand),
                self._region_stack[-1],
            )
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return ir.IRConst(expr.value)
        if isinstance(expr, ast.NameRef):
            lowered = self._lower_name(expr)
            if not isinstance(lowered, ir.IRScalarRead):  # pragma: no cover
                raise LoweringError(
                    f"array {expr.name!r} in scalar context escaped checking"
                )
            return lowered
        if isinstance(expr, ast.BinOp):
            return ir.IRBin(
                expr.op,
                self._lower_scalar(expr.lhs),
                self._lower_scalar(expr.rhs),
            )
        if isinstance(expr, ast.UnOp):
            return ir.IRUn(expr.op, self._lower_scalar(expr.operand))
        if isinstance(expr, ast.Call):
            func = "abs" if expr.func == "fabs" else expr.func
            return ir.IRIntrinsic(
                func, [self._lower_scalar(a) for a in expr.args]
            )
        raise LoweringError(f"cannot lower scalar expression {expr!r}")

    def _lower_name(self, expr: ast.NameRef) -> ir.IRExpr:
        name = expr.name
        if name in INDEX_BUILTINS:
            return ir.IRIndex(INDEX_BUILTINS[name])
        if name in self._loop_vars:
            return ir.IRScalarRead(name)
        sym = self.symbols.lookup_any(name)
        if isinstance(sym, ArraySymbol):
            return ir.IRArrayRead(name, None)
        if isinstance(sym, (ScalarSymbol, ConfigSymbol)):
            return ir.IRScalarRead(name)
        raise LoweringError(f"cannot lower name {name!r}")  # pragma: no cover


def lower(info: ProgramInfo) -> ir.IRProgram:
    """Lower a checked program to SPMD IR (communication-free).

    Parameters
    ----------
    info:
        The result of :func:`repro.frontend.analyze`.
    """
    return _Lowerer(info).run()
