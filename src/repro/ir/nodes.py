"""IR node definitions.

Two node families:

**Expressions** (:class:`IRExpr` subclasses) are fully resolved: array
reads carry :class:`~repro.lang.Direction` objects, reductions carry their
region, and scalar reads are plain names (the runtime holds one scalar
environment).

**Statements** come in *simple* and *structured* forms.  Simple statements
(:class:`ArrayAssign`, :class:`ScalarAssign`, :class:`CommCall`) live
inside :class:`Block` nodes; structured statements (:class:`ForLoop`,
:class:`RepeatLoop`, :class:`IfStmt`) contain bodies that are lists of
blocks and structured statements.  A :class:`Block` is a source-level
basic block — the communication optimizer never moves anything across a
``Block`` boundary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.ironman.calls import CallKind
from repro.lang.regions import Direction, Region

# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class IRExpr:
    """Base class for IR expressions."""


@dataclass
class IRConst(IRExpr):
    """Literal constant (int, float or bool)."""

    value: Union[int, float, bool]


@dataclass
class IRScalarRead(IRExpr):
    """Read of a replicated scalar: variable, config constant or loop
    variable.  ``name`` is unique program-wide (loop variables are renamed
    at lowering if they would collide)."""

    name: str


@dataclass
class IRArrayRead(IRExpr):
    """Read of a parallel array, optionally shifted.

    ``direction is None`` for an unshifted read (never communicates);
    ``wrap`` marks a periodic shift (indices wrap at the domain edges).
    """

    array: str
    direction: Optional[Direction] = None
    wrap: bool = False

    @property
    def is_shifted(self) -> bool:
        return self.direction is not None and not self.direction.is_zero


@dataclass
class IRIndex(IRExpr):
    """The builtin ``indexK`` array: coordinate ``dim`` (1-based) of each
    point of the executing region."""

    dim: int


@dataclass
class IRBin(IRExpr):
    """Binary operation; ``op`` in ``+ - * / ^ = != < <= > >= and or``."""

    op: str
    lhs: IRExpr
    rhs: IRExpr


@dataclass
class IRUn(IRExpr):
    """Unary operation: ``-`` or ``not``."""

    op: str
    operand: IRExpr


@dataclass
class IRIntrinsic(IRExpr):
    """Intrinsic function application."""

    func: str
    args: List[IRExpr]


@dataclass
class IRReduce(IRExpr):
    """Full reduction of a parallel expression over ``region`` to a
    replicated scalar (``op`` in ``+ * max min``).  Executing one implies
    collective communication — counted separately from point-to-point
    communication, as in the paper."""

    op: str
    operand: IRExpr
    region: Region


def expr_children(expr: IRExpr) -> List[IRExpr]:
    """Immediate sub-expressions."""
    if isinstance(expr, IRBin):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, IRUn):
        return [expr.operand]
    if isinstance(expr, IRIntrinsic):
        return list(expr.args)
    if isinstance(expr, IRReduce):
        return [expr.operand]
    return []


def walk_expr(expr: IRExpr) -> Iterator[IRExpr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


def expr_flops(expr: IRExpr) -> int:
    """Number of arithmetic operations per region point — the compute-cost
    weight used by the machine timing model."""
    count = 0
    for node in walk_expr(expr):
        if isinstance(node, (IRBin, IRUn)):
            count += 1
        elif isinstance(node, IRIntrinsic):
            # transcendentals are several flops; a flat small constant is
            # enough for relative timings
            count += 4 if node.func in ("sqrt", "exp", "ln", "log", "sin", "cos", "tanh", "pow") else 1
    return count


def shifted_reads(expr: IRExpr) -> List[IRArrayRead]:
    """All shifted array reads in the expression, in source order."""
    return [
        node
        for node in walk_expr(expr)
        if isinstance(node, IRArrayRead) and node.is_shifted
    ]


def arrays_read(expr: IRExpr) -> Set[str]:
    """Names of all arrays read anywhere in the expression."""
    return {
        node.array for node in walk_expr(expr) if isinstance(node, IRArrayRead)
    }


# ---------------------------------------------------------------------------
# communication descriptors
# ---------------------------------------------------------------------------

_desc_counter = itertools.count(1)


@dataclass
class CommEntry:
    """One (array, use-region) member of a communication.

    ``use_region`` is the region scope of the statement(s) the transferred
    data serves; the runtime derives the fluff strip from it.  When
    redundancy removal lets one transfer serve several uses, the entry's
    region is the bounding region of all served uses (conservative: at
    least the needed data moves)."""

    array: str
    use_region: Region


@dataclass
class CommDescriptor:
    """A single data transfer (one per *communication* in the paper's
    counting: "a set of calls to perform a single data transfer").

    A combined communication carries several entries — different arrays,
    one shared direction, hence one source and one destination processor.
    ``wrap`` marks a periodic transfer: edge processors exchange with the
    opposite edge (torus neighbours) instead of having no partner.
    """

    direction: Direction
    entries: List[CommEntry]
    wrap: bool = False
    id: int = field(default_factory=lambda: next(_desc_counter))

    @property
    def arrays(self) -> List[str]:
        return [e.array for e in self.entries]

    @property
    def is_combined(self) -> bool:
        return len(self.entries) > 1

    def describe(self) -> str:
        names = ", ".join(self.arrays)
        at = "@@" if self.wrap else "@"
        return f"comm#{self.id}({names} {at} {self.direction.name})"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class IRStmt:
    """Base class for IR statements."""


@dataclass
class ArrayAssign(IRStmt):
    """Whole-array statement ``[region] target := expr``.

    ``flops`` caches :func:`expr_flops` of the right-hand side plus one
    for the store."""

    region: Region
    target: str
    expr: IRExpr
    flops: int = 0

    def __post_init__(self) -> None:
        if self.flops == 0:
            self.flops = expr_flops(self.expr) + 1


@dataclass
class ScalarAssign(IRStmt):
    """Replicated scalar assignment.  The RHS may contain reductions
    (which are collective operations at run time)."""

    target: str
    expr: IRExpr


@dataclass
class CommCall(IRStmt):
    """One IRONMAN call (DR, SR, DN, or SV) for one communication."""

    kind: CallKind
    desc: CommDescriptor

    def describe(self) -> str:
        return f"{self.kind.name}({', '.join(self.desc.arrays)}, {self.desc.direction.name})"


SimpleStmt = Union[ArrayAssign, ScalarAssign, CommCall]


@dataclass
class Block(IRStmt):
    """A source-level basic block: straight-line simple statements.

    This is the optimizer's unit of scope.  Structured statements never
    appear inside a Block."""

    stmts: List[SimpleStmt] = field(default_factory=list)

    def core_stmts(self) -> List[Union[ArrayAssign, ScalarAssign]]:
        """The non-communication statements, in order."""
        return [s for s in self.stmts if not isinstance(s, CommCall)]

    def comm_calls(self) -> List[CommCall]:
        return [s for s in self.stmts if isinstance(s, CommCall)]

    def descriptors(self) -> List[CommDescriptor]:
        """Distinct communication descriptors, in first-appearance order."""
        seen: Dict[int, CommDescriptor] = {}
        for call in self.comm_calls():
            seen.setdefault(call.desc.id, call.desc)
        return list(seen.values())


@dataclass
class ForLoop(IRStmt):
    """Sequential counted loop; bounds are scalar IR expressions evaluated
    once at entry."""

    var: str
    low: IRExpr
    high: IRExpr
    step: Optional[IRExpr]
    body: List[IRStmt]


@dataclass
class RepeatLoop(IRStmt):
    """``repeat body until cond`` with an iteration cap enforced by the
    runtime (``max_trips``) so timing-only runs terminate."""

    body: List[IRStmt]
    cond: IRExpr
    max_trips: int = 1_000_000


@dataclass
class IfStmt(IRStmt):
    """Multi-arm conditional over replicated scalars (all ranks take the
    same arm — SPMD control flow stays coherent)."""

    arms: List[Tuple[IRExpr, List[IRStmt]]]
    orelse: List[IRStmt]


@dataclass
class IRProgram:
    """A lowered SPMD program.

    Attributes
    ----------
    name:
        Source program name.
    body:
        Top-level statement list (blocks and structured statements).
    arrays:
        Array name -> (domain region, fluff widths per dim).
    scalars:
        All scalar variable names (loop variables excluded).
    config_values:
        The config bindings the program was compiled with.
    """

    name: str
    body: List[IRStmt]
    arrays: Dict[str, Tuple[Region, Tuple[int, ...]]]
    scalars: List[str]
    config_values: Dict[str, float]

    def walk_blocks(self) -> Iterator[Block]:
        """Yield every Block in the program, in textual order."""
        yield from _walk_blocks(self.body)

    def all_descriptors(self) -> List[CommDescriptor]:
        """Distinct communication descriptors across the whole program."""
        seen: Dict[int, CommDescriptor] = {}
        for block in self.walk_blocks():
            for desc in block.descriptors():
                seen.setdefault(desc.id, desc)
        return list(seen.values())


def _walk_blocks(body: Sequence[IRStmt]) -> Iterator[Block]:
    for stmt in body:
        if isinstance(stmt, Block):
            yield stmt
        elif isinstance(stmt, ForLoop):
            yield from _walk_blocks(stmt.body)
        elif isinstance(stmt, RepeatLoop):
            yield from _walk_blocks(stmt.body)
        elif isinstance(stmt, IfStmt):
            for _, arm_body in stmt.arms:
                yield from _walk_blocks(arm_body)
            yield from _walk_blocks(stmt.orelse)


def walk_body(body: Sequence[IRStmt]) -> Iterator[IRStmt]:
    """Yield every statement (structured and simple containers) pre-order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ForLoop):
            yield from walk_body(stmt.body)
        elif isinstance(stmt, RepeatLoop):
            yield from walk_body(stmt.body)
        elif isinstance(stmt, IfStmt):
            for _, arm_body in stmt.arms:
                yield from walk_body(arm_body)
            yield from walk_body(stmt.orelse)
