"""Telemetry-driven regression tracking: baseline snapshots and diffs.

A **baseline** freezes the measurable surface of one study — every
``benchmark x experiment`` cell's communication counts, message/byte
volumes, and model execution time, plus the machine shape it was taken
on — into a small JSON document that lives in the repository
(``baselines/``).  A later run is *diffed* against it with the paper's
own standards of evidence:

* **counts must match exactly** — static/dynamic communication counts,
  message counts, and byte volumes are deterministic model outputs, so
  any drift is a behavior change (an optimizer pass got stronger,
  weaker, or broken);
* **model times match within a relative tolerance** (default 5%) —
  they are floats computed from the cost model and should be bit-stable,
  but the looser threshold keeps the check robust to numeric library
  differences across platforms.

``python -m repro compare --baseline PATH`` wires this into CI: a drift
exits nonzero and prints one line per drifted field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.errors import BaselineError

__all__ = [
    "BASELINE_KIND",
    "BASELINE_SCHEMA",
    "COUNT_FIELDS",
    "TIME_FIELDS",
    "Drift",
    "diff_baseline",
    "format_drifts",
    "load_baseline",
    "snapshot_study",
    "write_baseline",
]

#: Bump when the baseline document shape changes; loaders reject others.
#: 2: cells pin the simulator fast-path counters
#: (``sim.fastpath.compiled`` / ``extrapolated_trips`` / ``fallbacks``),
#: so the gate catches the compiled path silently disengaging, not just
#: drifting numbers.
BASELINE_SCHEMA = 2
BASELINE_KIND = "repro-baseline"

#: Cell fields compared exactly (integer model outputs).
COUNT_FIELDS = (
    "static_count",
    "dynamic_count",
    "total_messages",
    "total_bytes",
    "sim.fastpath.compiled",
    "sim.fastpath.extrapolated_trips",
    "sim.fastpath.fallbacks",
)
#: Cell fields compared within a relative tolerance.
TIME_FIELDS = ("execution_time",)


def snapshot_study(study, note: str = "") -> dict:
    """Freeze a :class:`~repro.engine.core.StudyResult` into a baseline
    document.

    Reads the per-job telemetry records, so cached and fresh runs
    snapshot identically.  ``note`` is free-form provenance (the CLI
    records the command line).
    """
    records = list(study.telemetry)
    if not records:
        raise BaselineError("cannot snapshot an empty study")
    cells: Dict[str, Dict[str, dict]] = {}
    for record in records:
        result = record["result"]
        fastpath = result.get("fastpath")
        cells.setdefault(record["benchmark"], {})[record["experiment"]] = {
            "static_count": int(result["static_count"]),
            "dynamic_count": int(result["dynamic_count"]),
            "total_messages": int(result["total_messages"]),
            "total_bytes": int(result["total_bytes"]),
            "execution_time": float(result["execution_time"]),
            # fast-path engagement is part of the pinned surface: a cell
            # that stops compiling (or starts falling back) is a
            # regression even when its numbers still match
            "sim.fastpath.compiled": int(fastpath is not None),
            "sim.fastpath.extrapolated_trips": int(
                fastpath["extrapolated_trips"] if fastpath else 0
            ),
            "sim.fastpath.fallbacks": int(
                fastpath["fallbacks"] if fastpath else 0
            ),
        }
    first = records[0]
    return {
        "schema": BASELINE_SCHEMA,
        "kind": BASELINE_KIND,
        "machine": first["machine"],
        "nprocs": first["nprocs"],
        "mode": first["mode"],
        "note": note,
        "benchmarks": cells,
    }


def write_baseline(path: Union[str, Path], snapshot: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> dict:
    """Read and validate a baseline document.

    Rejects anything that is not a ``repro-baseline`` of a known schema
    — a truncated file, a telemetry dump, or a baseline written by a
    future version all fail loudly instead of diffing as garbage.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from None
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("kind") != BASELINE_KIND:
        raise BaselineError(f"{path} is not a repro baseline document")
    if doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has schema {doc.get('schema')!r}; "
            f"this version reads schema {BASELINE_SCHEMA} "
            "(regenerate with `repro compare --update`)"
        )
    if not isinstance(doc.get("benchmarks"), dict):
        raise BaselineError(f"baseline {path} has no benchmarks table")
    return doc


@dataclass(frozen=True)
class Drift:
    """One field of one cell that left its baseline envelope."""

    benchmark: str
    experiment: str
    field: str
    expected: object
    actual: object

    def describe(self) -> str:
        return (
            f"{self.benchmark}/{self.experiment}: {self.field} "
            f"expected {self.expected}, got {self.actual}"
        )


def diff_baseline(
    current: dict, baseline: dict, time_tolerance: float = 0.05
) -> List[Drift]:
    """Every way ``current`` drifted from ``baseline``.

    Counts compare exactly; times within ``time_tolerance`` (relative).
    Cells present in the baseline but absent from the run (and the
    machine shape itself) drift too; cells the baseline never recorded
    are ignored, so a baseline may cover a subset of a larger run.
    """
    drifts: List[Drift] = []
    for shape_field in ("machine", "nprocs", "mode"):
        if current.get(shape_field) != baseline.get(shape_field):
            drifts.append(
                Drift(
                    "*",
                    "*",
                    shape_field,
                    baseline.get(shape_field),
                    current.get(shape_field),
                )
            )
    for bench, experiments in baseline["benchmarks"].items():
        current_bench = current["benchmarks"].get(bench)
        if current_bench is None:
            drifts.append(Drift(bench, "*", "cell", "present", "missing"))
            continue
        for key, expected in experiments.items():
            actual = current_bench.get(key)
            if actual is None:
                drifts.append(Drift(bench, key, "cell", "present", "missing"))
                continue
            for f in COUNT_FIELDS:
                if int(actual[f]) != int(expected[f]):
                    drifts.append(Drift(bench, key, f, expected[f], actual[f]))
            for f in TIME_FIELDS:
                want, got = float(expected[f]), float(actual[f])
                scale = max(abs(want), 1e-300)
                if abs(got - want) / scale > time_tolerance:
                    drifts.append(Drift(bench, key, f, want, got))
    return drifts


def format_drifts(drifts: Iterable[Drift]) -> str:
    lines = [drift.describe() for drift in drifts]
    if not lines:
        return "no drift from baseline"
    plural = "s" if len(lines) != 1 else ""
    return "\n".join([f"{len(lines)} drift{plural} from baseline:"] + [
        f"  {line}" for line in lines
    ])
