"""Distributed tracing: one trace across coordinator, pool/shard
workers, and the HTTP cache server.

The coordinator's recorder owns the run's **trace context** — its trace
id plus the span id of whatever span encloses the dispatch.  This
module moves that context across the three process boundaries the
engine has and brings the evidence back:

* **Pool workers** — the dispatchers pass :func:`worker_init` as the
  ``ProcessPoolExecutor`` initializer (only when tracing is on, so the
  disabled path stays untouched).  Inside the worker,
  :func:`begin_job_capture` starts a throwaway recorder per job, seeded
  with the coordinator's trace id and parented under its dispatch span;
  the capture payload rides home on the job record under the ``"obs"``
  key, and the dispatcher calls :func:`absorb` to pop it and stitch it
  into the coordinator's recorder (timestamps rebased via the worker's
  wall-clock epoch, records tagged ``worker_pid``, worker metrics
  merged into the registry).
* **HTTP cache** — :class:`~repro.engine.cache_http.HttpCache` sends
  the context as the ``X-Repro-Trace: <trace_id>/<span_id>`` header;
  the ``CacheServer`` handler wraps each request in
  :func:`server_span`, which adopts the caller's context so
  server-side spans land in the caller's trace (when the server
  process records at all).
* **Prometheus** — :func:`render_prometheus` renders a metrics
  snapshot in the text exposition format for ``GET /metrics`` on
  ``repro serve``.

Span ids are globally unique strings (random prefix per recorder), so
stitching is pure concatenation — no id remapping.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs import core
from repro.obs.sinks import MemorySink

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "absorb",
    "begin_job_capture",
    "propagation_context",
    "render_prometheus",
    "server_span",
    "worker_init",
]

#: HTTP header carrying "<trace_id>/<parent_span_id>".
TRACE_HEADER = "X-Repro-Trace"


@dataclass(frozen=True)
class TraceContext:
    """A propagatable (trace id, parent span id) pair."""

    trace_id: str
    span_id: Optional[str] = None

    def header(self) -> str:
        return f"{self.trace_id}/{self.span_id or ''}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``TRACE_HEADER`` value; None when absent/malformed."""
        if not value or "/" not in value:
            return None
        trace_id, _, span_id = value.partition("/")
        trace_id = trace_id.strip()
        span_id = span_id.strip()
        if not trace_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id or None)


def propagation_context() -> Optional[TraceContext]:
    """The context to hand a child process/request from the current
    execution point; None when tracing is off (children then run with
    tracing off too — the zero-cost default)."""
    parent = core.trace_parent()
    if parent is None:
        return None
    return TraceContext(trace_id=parent[0], span_id=parent[1])


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Set once per worker process by worker_init (pool initializer).
_WORKER_CONTEXT: Optional[TraceContext] = None


def worker_init(trace_id: str, span_id: Optional[str]) -> None:
    """``ProcessPoolExecutor`` initializer: remember the coordinator's
    trace context so job executions in this worker capture under it.

    A *forked* worker (the Linux default) also inherits the
    coordinator's live recorder; discard that reference — without
    flushing its sinks, which belong to the parent — so per-job
    captures start clean instead of recording into a dead copy."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = TraceContext(trace_id=trace_id, span_id=span_id)
    if core.enabled():
        core.discard()


class JobCapture:
    """A per-job throwaway recorder inside a pool worker.

    :meth:`finish` tears it down and returns the JSON-safe payload the
    job record carries home (``{"pid", "wall_epoch", "records",
    "metrics"}``).
    """

    def __init__(self, context: TraceContext) -> None:
        self.sink = MemorySink()
        self.recorder = core.configure(
            self.sink, trace_id=context.trace_id, parent_span=context.span_id
        )

    def finish(self) -> dict:
        wall_epoch = self.recorder.wall_epoch
        if core.current() is self.recorder:
            metrics = core.shutdown()
        else:  # replaced mid-job; still close our own
            metrics = self.recorder.close()
        records = [r for r in self.sink.records if r.get("type") != "metrics"]
        return {
            "pid": os.getpid(),
            "wall_epoch": wall_epoch,
            "records": records,
            "metrics": metrics or {},
        }


def begin_job_capture() -> Optional[JobCapture]:
    """Start capturing obs output for one job in a pool worker.

    Returns None (capture nothing) unless this process was initialized
    with :func:`worker_init` — i.e. the coordinator is tracing — and no
    recorder is already live here (inline dispatch records directly
    into the coordinator's recorder; wrapping it would steal records).
    """
    if _WORKER_CONTEXT is None or core.enabled():
        return None
    return JobCapture(_WORKER_CONTEXT)


def absorb(record: Optional[dict]) -> int:
    """Pop a job record's ``"obs"`` payload (if any) and stitch it into
    the active recorder.  Dispatchers call this on every record as it
    arrives, *before* the record reaches the result cache or the
    caller, so records stay byte-identical to an untraced run.  Returns
    the number of stitched records."""
    if not record:
        return 0
    payload = record.pop("obs", None)
    if not payload:
        return 0
    recorder = core.current()
    if recorder is None:
        return 0
    return recorder.merge_worker(payload)


# ---------------------------------------------------------------------------
# server side (HTTP cache)
# ---------------------------------------------------------------------------


@contextmanager
def server_span(name: str, header: Optional[str], **attrs: Any):
    """Wrap one server-side request in a span parented under the
    caller's trace context (parsed from the ``TRACE_HEADER`` value).

    No-op when the server process isn't recording; plain local span
    when the caller sent no (or a malformed) header.
    """
    recorder = core.current()
    if recorder is None:
        yield
        return
    context = TraceContext.from_header(header)
    if context is None:
        with recorder.span(name, **attrs):
            yield
        return
    with core.bind_trace(context.trace_id, context.span_id):
        with recorder.span(name, **attrs):
            yield


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitize a dotted metric name into a legal Prometheus name."""
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`~repro.obs.core.Metrics.snapshot` in Prometheus
    text exposition format (version 0.0.4).

    Counters get a ``_total`` suffix (``engine.dispatch.jobs`` →
    ``engine_dispatch_jobs_total``); gauges render as-is; histograms
    render as a summary (``_count``/``_sum``) plus ``_min``/``_max``
    gauges.
    """
    lines = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in sorted((snapshot.get("histograms") or {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {hist['count']}")
        lines.append(f"{metric}_sum {hist['sum']}")
        for bound in ("min", "max"):
            lines.append(f"# TYPE {metric}_{bound} gauge")
            lines.append(f"{metric}_{bound} {hist[bound]}")
    return "\n".join(lines) + "\n" if lines else ""
