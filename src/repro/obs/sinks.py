"""Pluggable sinks for the observability recorder.

Every sink consumes the plain-dict records :class:`~repro.obs.core.
Recorder` emits:

``span``
    ``{"type": "span", "name", "ts", "dur", "depth", "attrs"?, "error"?}``
``event``
    ``{"type": "event", "name", "ts", "attrs"?}``
``counter`` / ``gauge`` / ``sample``
    ``{"type": ..., "name", "ts", "value", "delta"?}``
``rank_event``
    ``{"type": "rank_event", "rank", "kind", "label", "ts", "dur"}`` —
    a bridged simulation-timeline interval, timestamped in **model**
    seconds (a different clock from every host-side record).
``metrics``
    The final registry snapshot, emitted once at close.

Three sinks ship:

* :class:`MemorySink` — a list, for tests and in-process inspection;
* :class:`JsonlSink` — one JSON object per line, the machine-readable
  event log (CI uploads it as an artifact);
* :class:`ChromeTraceSink` — a Chrome trace-event JSON document that
  Perfetto (https://ui.perfetto.dev) loads directly.  Host spans and
  counters land under the "host" process; bridged rank timelines land
  under the "simulated ranks" process with one thread per rank, so one
  file shows compiler phases, engine cache traffic, and the simulated
  machine side by side.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["ChromeTraceSink", "JsonlSink", "MemorySink", "Sink"]


class Sink:
    """Interface: override :meth:`emit`; :meth:`close` is optional."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Keep every record in a list (tests; programmatic consumers)."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    # -- conveniences ---------------------------------------------------
    def of_type(self, type_: str) -> List[dict]:
        return [r for r in self.records if r["type"] == type_]

    def spans(self, name: Optional[str] = None) -> List[dict]:
        return [
            r
            for r in self.of_type("span")
            if name is None or r["name"] == name
        ]

    def events(self, name: Optional[str] = None) -> List[dict]:
        return [
            r
            for r in self.of_type("event")
            if name is None or r["name"] == name
        ]

    def counter_total(self, name: str) -> int:
        """The last emitted running total of a counter (0 if never hit)."""
        total = 0
        for r in self.records:
            if r["type"] == "counter" and r["name"] == name:
                total = r["value"]
        return total


class JsonlSink(Sink):
    """Append records as JSON lines to a file (created eagerly, so an
    empty trace still leaves a valid, empty log)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str))
        self._fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


#: Chrome-trace process ids: host-side records vs. bridged model time.
HOST_PID = 1
SIM_PID = 2


class ChromeTraceSink(Sink):
    """Accumulate a Chrome trace-event document; write it on close.

    All host records go to pid ``HOST_PID`` / tid 0 (complete events
    nest by containment, which the recorder's span stack guarantees);
    each bridged simulation rank becomes a thread of pid ``SIM_PID``
    with timestamps in model microseconds.  Counters become ``"C"``
    events so Perfetto renders them as tracks.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.trace_events: List[dict] = []
        self._sim_ranks: set = set()
        self._metrics: Optional[dict] = None
        self._closed = False

    # -- record translation --------------------------------------------
    def emit(self, record: dict) -> None:
        type_ = record["type"]
        if type_ == "span":
            entry = {
                "name": record["name"],
                "cat": "host",
                "ph": "X",
                "ts": record["ts"] * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": HOST_PID,
                "tid": 0,
            }
            args = dict(record.get("attrs") or {})
            if record.get("error"):
                args["error"] = record["error"]
            if args:
                entry["args"] = args
            self.trace_events.append(entry)
        elif type_ == "event":
            self.trace_events.append(
                {
                    "name": record["name"],
                    "cat": "host",
                    "ph": "i",
                    "s": "p",
                    "ts": record["ts"] * 1e6,
                    "pid": HOST_PID,
                    "tid": 0,
                    "args": dict(record.get("attrs") or {}),
                }
            )
        elif type_ in ("counter", "gauge", "sample"):
            self.trace_events.append(
                {
                    "name": record["name"],
                    "cat": type_,
                    "ph": "C",
                    "ts": record["ts"] * 1e6,
                    "pid": HOST_PID,
                    "args": {"value": record["value"]},
                }
            )
        elif type_ == "rank_event":
            rank = record["rank"]
            self._sim_ranks.add(rank)
            self.trace_events.append(
                {
                    "name": record["kind"],
                    "cat": "sim",
                    "ph": "X",
                    "ts": record["ts"] * 1e6,
                    "dur": record["dur"] * 1e6,
                    "pid": SIM_PID,
                    "tid": rank,
                    "args": {"label": record["label"]},
                }
            )
        elif type_ == "metrics":
            self._metrics = record["metrics"]

    # -- document assembly ---------------------------------------------
    def _metadata(self) -> List[dict]:
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": HOST_PID,
                "args": {"name": "host"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "repro"},
            },
        ]
        if self._sim_ranks:
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": SIM_PID,
                    "args": {"name": "simulated ranks (model time)"},
                }
            )
            for rank in sorted(self._sim_ranks):
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": SIM_PID,
                        "tid": rank,
                        "args": {"name": f"rank {rank}"},
                    }
                )
        return meta

    def document(self) -> dict:
        """The full Chrome trace-event document (before/without close)."""
        other: Dict[str, object] = {"generator": "repro.obs"}
        if self._metrics is not None:
            other["metrics"] = self._metrics
        return {
            "traceEvents": self._metadata() + self.trace_events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.path.write_text(json.dumps(self.document(), default=str) + "\n")
