"""Pluggable sinks for the observability recorder.

Every sink consumes the plain-dict records :class:`~repro.obs.core.
Recorder` emits:

``span``
    ``{"type": "span", "name", "ts", "dur", "depth", "attrs"?, "error"?}``
``event``
    ``{"type": "event", "name", "ts", "attrs"?}``
``counter`` / ``gauge`` / ``sample``
    ``{"type": ..., "name", "ts", "value", "delta"?}``
``rank_event``
    ``{"type": "rank_event", "rank", "kind", "label", "ts", "dur"}`` —
    a bridged simulation-timeline interval, timestamped in **model**
    seconds (a different clock from every host-side record).
``metrics``
    The final registry snapshot, emitted once at close.

Four sinks ship:

* :class:`MemorySink` — a list, for tests and in-process inspection;
* :class:`JsonlSink` — one JSON object per line, the machine-readable
  event log (CI uploads it as an artifact); ``flush_every=1`` makes it
  line-buffered (crash-safe streaming for long sweeps);
* :class:`ChromeTraceSink` — a Chrome trace-event JSON document that
  Perfetto (https://ui.perfetto.dev) loads directly.  Host spans and
  counters land under the "host" process; records stitched back from
  pool/shard workers (tagged ``worker_pid``) each get their own
  process; bridged rank timelines land under the "simulated ranks"
  process with one thread per rank, so one file shows compiler phases,
  engine cache traffic, shard workers, and the simulated machine side
  by side;
* :class:`QueueSink` — pushes (optionally filtered) records onto any
  object with ``put(record)``; feeds ``repro serve`` progress streams.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["ChromeTraceSink", "JsonlSink", "MemorySink", "QueueSink", "Sink"]


class Sink:
    """Interface: override :meth:`emit`; :meth:`close` and
    :meth:`flush` are optional."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Keep every record in a list (tests; programmatic consumers)."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    # -- conveniences ---------------------------------------------------
    def of_type(self, type_: str) -> List[dict]:
        return [r for r in self.records if r["type"] == type_]

    def spans(self, name: Optional[str] = None) -> List[dict]:
        return [
            r
            for r in self.of_type("span")
            if name is None or r["name"] == name
        ]

    def events(self, name: Optional[str] = None) -> List[dict]:
        return [
            r
            for r in self.of_type("event")
            if name is None or r["name"] == name
        ]

    def counter_total(self, name: str) -> int:
        """The last emitted running total of a counter (0 if never hit)."""
        total = 0
        for r in self.records:
            if r["type"] == "counter" and r["name"] == name:
                total = r["value"]
        return total


class JsonlSink(Sink):
    """Append records as JSON lines to a file (created eagerly, so an
    empty trace still leaves a valid, empty log).

    ``flush_every=N`` flushes the file every N records; ``flush_every=1``
    is the line-buffered mode — every record hits the disk as one
    complete line, so a process killed mid-run leaves a valid JSONL
    file (at worst the final line is truncated).  The default (None)
    keeps full buffering: flush only at close.
    """

    def __init__(
        self, path: Union[str, Path], *, flush_every: Optional[int] = None
    ) -> None:
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = flush_every
        self._since_flush = 0
        self._fh = self.path.open("w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        if self._fh.closed:  # a late emit from another thread: drop it
            return
        self._fh.write(
            json.dumps(record, sort_keys=True, default=str) + "\n"
        )
        if self.flush_every is not None:
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._fh.flush()
                self._since_flush = 0

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class QueueSink(Sink):
    """Push records onto any object with a ``put(record)`` method
    (``queue.Queue``, a progress log, ...).

    ``types`` keeps only the listed record types; ``trace`` keeps only
    records stamped with that trace id.  Both default to no filtering.
    Feeds the ``repro serve`` progress streams: one QueueSink per
    in-flight run, filtered to that run's trace id.
    """

    def __init__(
        self,
        queue,
        *,
        types: Optional[Tuple[str, ...]] = None,
        trace: Optional[str] = None,
    ) -> None:
        self.queue = queue
        self.types = tuple(types) if types is not None else None
        self.trace = trace

    def emit(self, record: dict) -> None:
        if self.types is not None and record.get("type") not in self.types:
            return
        if self.trace is not None and record.get("trace") != self.trace:
            return
        self.queue.put(record)


#: Chrome-trace process ids: host-side records vs. bridged model time.
#: Records stitched back from pool/shard workers get pids counted up
#: from WORKER_PID_BASE, one per distinct worker_pid.
HOST_PID = 1
SIM_PID = 2
WORKER_PID_BASE = 100


class ChromeTraceSink(Sink):
    """Accumulate a Chrome trace-event document; write it on close.

    Coordinator records go to pid ``HOST_PID`` / tid 0 (complete events
    nest by containment, which the recorder's span stack guarantees);
    records carrying a ``worker_pid`` tag (stitched back from
    pool/shard workers) each get a dedicated chrome process named after
    the worker; each bridged simulation rank becomes a thread of pid
    ``SIM_PID`` with timestamps in model microseconds.  Counters become
    ``"C"`` events so Perfetto renders them as tracks.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.trace_events: List[dict] = []
        self._sim_ranks: set = set()
        self._worker_pids: Dict[int, int] = {}
        self._metrics: Optional[dict] = None
        self._closed = False

    def _host_pid(self, record: dict) -> int:
        worker = record.get("worker_pid")
        if worker is None:
            return HOST_PID
        pid = self._worker_pids.get(worker)
        if pid is None:
            pid = WORKER_PID_BASE + len(self._worker_pids)
            self._worker_pids[worker] = pid
        return pid

    # -- record translation --------------------------------------------
    def emit(self, record: dict) -> None:
        type_ = record["type"]
        if type_ == "span":
            entry = {
                "name": record["name"],
                "cat": "host",
                "ph": "X",
                "ts": record["ts"] * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": self._host_pid(record),
                "tid": 0,
            }
            args = dict(record.get("attrs") or {})
            if record.get("error"):
                args["error"] = record["error"]
            if args:
                entry["args"] = args
            self.trace_events.append(entry)
        elif type_ == "event":
            self.trace_events.append(
                {
                    "name": record["name"],
                    "cat": "host",
                    "ph": "i",
                    "s": "p",
                    "ts": record["ts"] * 1e6,
                    "pid": self._host_pid(record),
                    "tid": 0,
                    "args": dict(record.get("attrs") or {}),
                }
            )
        elif type_ in ("counter", "gauge", "sample"):
            self.trace_events.append(
                {
                    "name": record["name"],
                    "cat": type_,
                    "ph": "C",
                    "ts": record["ts"] * 1e6,
                    "pid": self._host_pid(record),
                    "args": {"value": record["value"]},
                }
            )
        elif type_ == "rank_event":
            rank = record["rank"]
            self._sim_ranks.add(rank)
            self.trace_events.append(
                {
                    "name": record["kind"],
                    "cat": "sim",
                    "ph": "X",
                    "ts": record["ts"] * 1e6,
                    "dur": record["dur"] * 1e6,
                    "pid": SIM_PID,
                    "tid": rank,
                    "args": {"label": record["label"]},
                }
            )
        elif type_ == "metrics":
            self._metrics = record["metrics"]

    # -- document assembly ---------------------------------------------
    def _metadata(self) -> List[dict]:
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": HOST_PID,
                "args": {"name": "host"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "repro"},
            },
        ]
        for worker, pid in sorted(self._worker_pids.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"worker {worker}"},
                }
            )
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"worker {worker}"},
                }
            )
        if self._sim_ranks:
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": SIM_PID,
                    "args": {"name": "simulated ranks (model time)"},
                }
            )
            for rank in sorted(self._sim_ranks):
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": SIM_PID,
                        "tid": rank,
                        "args": {"name": f"rank {rank}"},
                    }
                )
        return meta

    def document(self) -> dict:
        """The full Chrome trace-event document (before/without close)."""
        other: Dict[str, object] = {"generator": "repro.obs"}
        if self._metrics is not None:
            other["metrics"] = self._metrics
        return {
            "traceEvents": self._metadata() + self.trace_events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.path.write_text(json.dumps(self.document(), default=str) + "\n")
