"""The recorder: hierarchical spans, a metrics registry, and the
module-global switch that keeps everything zero-cost when tracing is
off.

One :class:`Recorder` is active per process at most (simulation workers
spawned by the engine each start with tracing off; the engine re-emits
their warnings — see :mod:`repro.engine.core`).  Every instrumentation
site in the package goes through the module-level helpers
(:func:`span`, :func:`add`, :func:`event`, ...), which read the active
recorder once and fall back to shared no-op objects, so a disabled run
pays one attribute load and one ``is None`` test per site — nothing is
allocated, formatted, or buffered.

Timebases
---------

Host-side records (spans, counters, events) are stamped in seconds of
``time.perf_counter()`` relative to the recorder's epoch.  Bridged
simulation timelines (:func:`bridge_rank_trace`) are in *model seconds*
— a different clock entirely — and sinks keep them in a separate
process group so the two never get compared by accident.

Trace identity
--------------

Every recorder owns a **trace id** (random hex, minted at
construction) and stamps it on every record it emits, and every span
gets a process-unique **span id** plus the id of its parent (the
enclosing span on this thread, or the recorder's ``parent_span`` for
top-level spans — how a shipped worker trace parents under its
coordinator; see :mod:`repro.obs.distributed`).  :func:`bind_trace`
overrides both per *thread of execution* (a contextvar), which is how
``repro serve`` attributes records from concurrently running studies
to the right run.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Metrics",
    "Recorder",
    "Span",
    "active_trace",
    "add",
    "bind_trace",
    "bridge_rank_trace",
    "configure",
    "current",
    "discard",
    "enabled",
    "event",
    "gauge",
    "observe",
    "recording",
    "shutdown",
    "span",
    "trace_parent",
    "warn_once",
]

# Per-thread-of-execution (trace_id, parent_span_id) override installed
# by bind_trace(); lets one process attribute records from concurrent
# runs (e.g. repro serve work threads) to the right trace.
_RUN_TRACE: ContextVar[Optional[Tuple[str, Optional[str]]]] = ContextVar(
    "repro_obs_run_trace", default=None
)


class Metrics:
    """Counters, gauges, and histogram summaries by dotted name.

    Counters are monotonically accumulated ints; gauges keep the last
    value set; histograms keep ``count``/``sum``/``min``/``max`` (enough
    for the regression thresholds — full bucket vectors would outlive
    their usefulness here).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def add(self, name: str, n: int = 1) -> int:
        total = self.counters.get(name, 0) + n
        self.counters[name] = total
        return total

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
        else:
            h["count"] += 1
            h["sum"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)

    def snapshot(self) -> dict:
        """JSON-safe copy of every registered metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges keep the incoming value (last write wins),
        histograms combine count/sum/min/max.  This is how worker-side
        registries shipped back by the dispatchers land in the
        coordinator (see :mod:`repro.obs.distributed`).
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauges[name] = float(value)
        for name, incoming in (snapshot.get("histograms") or {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = dict(incoming)
            else:
                mine["count"] += incoming["count"]
                mine["sum"] += incoming["sum"]
                mine["min"] = min(mine["min"], incoming["min"])
                mine["max"] = max(mine["max"], incoming["max"])


class Span:
    """One timed interval, emitted on exit.

    Created only through :meth:`Recorder.span`; supports nesting (the
    recorder tracks a per-thread stack, and the emitted record carries
    the depth plus this span's ``id`` and its ``parent`` span id).
    """

    __slots__ = ("_recorder", "name", "attrs", "_t0", "_depth", "id", "parent")

    def __init__(
        self,
        recorder: "Recorder",
        name: str,
        attrs: Dict[str, Any],
        parent: Optional[str] = None,
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._depth = 0
        self.id = ""
        self.parent = parent

    def __enter__(self) -> "Span":
        rec = self._recorder
        stack = rec._stack()
        self._depth = len(stack)
        self.id = rec.next_span_id()
        if self.parent is None:
            if stack:
                self.parent = stack[-1][1]
            else:
                bound = _RUN_TRACE.get()
                self.parent = bound[1] if bound is not None else rec.parent_span
        stack.append((self.name, self.id))
        self._t0 = rec.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._recorder.now()
        stack = self._recorder._stack()
        if stack and stack[-1][1] == self.id:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "ts": self._t0,
            "dur": end - self._t0,
            "depth": self._depth,
            "id": self.id,
        }
        if self.parent is not None:
            record["parent"] = self.parent
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._recorder.emit(record)
        return False


class _NullSpan:
    """The disabled-tracing span: a stateless, reusable no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Collects spans, events, and metrics, fanning records out to sinks.

    Records are plain dicts (see :mod:`repro.obs.sinks` for the shapes);
    the metrics registry additionally accumulates in memory so a final
    summary record lands in every sink at :meth:`close`.

    ``trace_id`` identifies every record this recorder emits (a worker
    recorder is constructed with the coordinator's trace id so the
    stitched output is one trace); ``parent_span`` is the span id that
    top-level spans parent under when no enclosing span exists on the
    current thread.
    """

    def __init__(
        self,
        sinks: Iterable[Any] = (),
        *,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> None:
        self.sinks: List[Any] = list(sinks)
        self.metrics = Metrics()
        self.trace_id = trace_id or uuid.uuid4().hex
        self.parent_span = parent_span
        # Span ids are "<8 hex>:<n>" — the random prefix makes ids from
        # worker recorders globally unique, so stitching never remaps.
        self._span_prefix = uuid.uuid4().hex[:8]
        self._span_seq = itertools.count(1)
        self._tls = threading.local()
        self._epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self._closed = False
        # Sinks are not thread-safe (a TextIOWrapper written from two
        # threads can scramble its buffer); background emitters — the
        # HTTP cache server, progress streams — share this recorder
        # with the host thread, so fan-out and close serialize here.
        self._emit_lock = threading.Lock()

    # -- time ----------------------------------------------------------
    def now(self) -> float:
        """Seconds since this recorder's epoch (host clock)."""
        return time.perf_counter() - self._epoch

    # -- span identity -------------------------------------------------
    def next_span_id(self) -> str:
        return f"{self._span_prefix}:{next(self._span_seq)}"

    def _stack(self) -> List[Tuple[str, str]]:
        """The per-thread (name, span id) stack of open spans."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_span_id(self) -> Optional[str]:
        stack = getattr(self._tls, "stack", None)
        if stack:
            return stack[-1][1]
        return None

    # -- emission ------------------------------------------------------
    def add_sink(self, sink: Any) -> None:
        """Attach ``sink`` atomically with respect to concurrent emits.

        Mutating :attr:`sinks` directly from another thread can make an
        in-flight :meth:`emit` iteration skip a sink entirely — use
        this and :meth:`remove_sink` for run-scoped sinks.
        """
        with self._emit_lock:
            self.sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        """Detach ``sink``; a no-op if it is not attached."""
        with self._emit_lock:
            try:
                self.sinks.remove(sink)
            except ValueError:
                pass

    def emit(self, record: dict) -> None:
        if "trace" not in record:
            bound = _RUN_TRACE.get()
            record["trace"] = bound[0] if bound is not None else self.trace_id
        with self._emit_lock:
            for sink in self.sinks:
                sink.emit(record)

    def span(self, name: str, _parent: Optional[str] = None, **attrs: Any) -> Span:
        return Span(self, name, attrs, parent=_parent)

    def event(self, name: str, **attrs: Any) -> None:
        record: Dict[str, Any] = {"type": "event", "name": name, "ts": self.now()}
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def add(self, name: str, n: int = 1) -> None:
        total = self.metrics.add(name, n)
        self.emit(
            {
                "type": "counter",
                "name": name,
                "ts": self.now(),
                "delta": n,
                "value": total,
            }
        )

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)
        self.emit(
            {"type": "gauge", "name": name, "ts": self.now(), "value": float(value)}
        )

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        self.emit(
            {"type": "sample", "name": name, "ts": self.now(), "value": float(value)}
        )

    def bridge_rank_trace(self, trace: Iterable[Any], rank: int) -> int:
        """Forward one simulated rank's :class:`~repro.runtime.timing.
        TraceEvent` timeline into the sinks.

        Timestamps stay in model seconds; sinks file them under a
        separate "simulated ranks" process.  Returns the event count.
        """
        n = 0
        for e in trace:
            self.emit(
                {
                    "type": "rank_event",
                    "rank": int(rank),
                    "kind": e.kind,
                    "label": e.label,
                    "ts": e.start,
                    "dur": e.end - e.start,
                }
            )
            n += 1
        self.metrics.add(f"sim.trace.rank{rank}.events", n)
        return n

    def merge_worker(self, payload: dict) -> int:
        """Stitch a worker-side capture payload (see
        :func:`repro.obs.distributed.begin_job_capture`) into this
        recorder: re-emit the worker's records with timestamps rebased
        onto this recorder's epoch and tagged with the worker pid, and
        fold the worker's metrics registry into ours.

        Returns the number of records re-emitted.
        """
        delta = float(payload.get("wall_epoch", self.wall_epoch)) - self.wall_epoch
        pid = payload.get("pid")
        n = 0
        for record in payload.get("records", ()):
            out = dict(record)
            if "ts" in out:
                out["ts"] = out["ts"] + delta
            if pid is not None:
                out["worker_pid"] = pid
            self.emit(out)
            n += 1
        metrics = payload.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        return n

    # -- lifecycle -----------------------------------------------------
    def close(self) -> dict:
        """Emit the final metrics summary, close every sink, and return
        the metrics snapshot.  Idempotent."""
        snap = self.metrics.snapshot()
        if not self._closed:
            self._closed = True
            self.emit({"type": "metrics", "ts": self.now(), "metrics": snap})
            with self._emit_lock:
                for sink in self.sinks:
                    sink.close()
        return snap

    def flush(self) -> None:
        """Drain every sink's buffer to its backing store."""
        with self._emit_lock:
            for sink in self.sinks:
                flush = getattr(sink, "flush", None)
                if flush is not None:
                    flush()


# ---------------------------------------------------------------------------
# the module-global switch
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Recorder] = None


def current() -> Optional[Recorder]:
    """The active recorder, or None when tracing is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def configure(
    *sinks: Any,
    trace_id: Optional[str] = None,
    parent_span: Optional[str] = None,
) -> Recorder:
    """Install a fresh recorder writing to ``sinks`` and return it.

    Replaces (and closes) any previously active recorder.  ``trace_id``
    and ``parent_span`` seed the recorder's trace identity — used by
    pool workers so their records stitch under the coordinator's root.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Recorder(sinks, trace_id=trace_id, parent_span=parent_span)
    return _ACTIVE


def shutdown() -> Optional[dict]:
    """Close the active recorder; return its metrics snapshot (None when
    tracing was already off)."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    if recorder is None:
        return None
    return recorder.close()


def discard() -> None:
    """Drop the active recorder WITHOUT flushing its sinks.

    For forked children that inherit the parent's live recorder:
    closing it there would flush the parent's sinks (e.g. write the
    trace file) from the child, so the inherited reference is simply
    abandoned."""
    global _ACTIVE
    _ACTIVE = None


def _flush_before_fork() -> None:
    """Forked children inherit the sinks' file objects *including their
    userspace buffers*; interpreter shutdown in the child flushes those
    inherited bytes a second time at the shared file offset, splicing
    duplicates into the log.  Draining the buffers in the parent
    immediately before every fork leaves the child nothing to
    re-flush."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.flush()


if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(before=_flush_before_fork)


@contextmanager
def recording(*sinks: Any):
    """``with recording(MemorySink()) as rec:`` — scoped tracing."""
    recorder = configure(*sinks)
    try:
        yield recorder
    finally:
        if _ACTIVE is recorder:
            shutdown()
        else:  # replaced mid-scope; just make sure it is closed
            recorder.close()


# -- guarded instrumentation helpers (the only API hot code calls) --------


def span(name: str, **attrs: Any):
    """A timed span context manager; a shared no-op when tracing is off."""
    r = _ACTIVE
    if r is None:
        return _NULL_SPAN
    return r.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    r = _ACTIVE
    if r is not None:
        r.event(name, **attrs)


def add(name: str, n: int = 1) -> None:
    """Increment a counter (no-op when tracing is off)."""
    r = _ACTIVE
    if r is not None and n:
        r.add(name, n)


def gauge(name: str, value: float) -> None:
    r = _ACTIVE
    if r is not None:
        r.gauge(name, value)


def observe(name: str, value: float) -> None:
    r = _ACTIVE
    if r is not None:
        r.observe(name, value)


def bridge_rank_trace(trace: Optional[Iterable[Any]], rank: int) -> int:
    r = _ACTIVE
    if r is None or trace is None:
        return 0
    return r.bridge_rank_trace(trace, rank)


def counters() -> Dict[str, int]:
    """Live counter snapshot ({} when tracing is off) — test helper."""
    r = _ACTIVE
    return dict(r.metrics.counters) if r is not None else {}


# -- trace identity helpers ------------------------------------------------


def active_trace() -> Optional[str]:
    """The trace id records emitted *here, now* would be stamped with:
    the :func:`bind_trace` override if one is in effect, else the
    active recorder's id; None when tracing is off."""
    r = _ACTIVE
    if r is None:
        return None
    bound = _RUN_TRACE.get()
    return bound[0] if bound is not None else r.trace_id


def trace_parent() -> Optional[Tuple[str, Optional[str]]]:
    """The ``(trace_id, span_id)`` context a child of the current
    execution point should parent under — the innermost open span on
    this thread, falling back to the bound/recorder parent.  None when
    tracing is off.  This is what the dispatchers and :class:`HttpCache`
    propagate outward."""
    r = _ACTIVE
    if r is None:
        return None
    bound = _RUN_TRACE.get()
    trace = bound[0] if bound is not None else r.trace_id
    span_id = r.current_span_id()
    if span_id is None:
        span_id = bound[1] if bound is not None else r.parent_span
    return trace, span_id


@contextmanager
def bind_trace(trace_id: str, parent_span: Optional[str] = None):
    """Attribute records emitted in this context (and tasks it spawns
    on the same thread of execution) to ``trace_id``, parenting
    top-level spans under ``parent_span``.  Nests; restores on exit."""
    token = _RUN_TRACE.set((trace_id, parent_span))
    try:
        yield
    finally:
        _RUN_TRACE.reset(token)


# -- once-per-process warnings --------------------------------------------

_WARNED_ONCE: set = set()


def warn_once(message: str, **attrs: Any) -> bool:
    """Emit a ``warning`` event exactly once per process per message
    (set-backed dedup, mirroring ``Instrumentation.warn``).  Returns
    True when the event was emitted.  Safe to call with tracing off —
    the dedup set still records the message so enabling tracing later
    does not replay old warnings."""
    if message in _WARNED_ONCE:
        return False
    _WARNED_ONCE.add(message)
    r = _ACTIVE
    if r is not None:
        r.event("warning", message=message, **attrs)
        return True
    return False


def reset_warnings() -> None:
    """Clear the once-per-process warning dedup set — test helper."""
    _WARNED_ONCE.clear()
