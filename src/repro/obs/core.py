"""The recorder: hierarchical spans, a metrics registry, and the
module-global switch that keeps everything zero-cost when tracing is
off.

One :class:`Recorder` is active per process at most (simulation workers
spawned by the engine each start with tracing off; the engine re-emits
their warnings — see :mod:`repro.engine.core`).  Every instrumentation
site in the package goes through the module-level helpers
(:func:`span`, :func:`add`, :func:`event`, ...), which read the active
recorder once and fall back to shared no-op objects, so a disabled run
pays one attribute load and one ``is None`` test per site — nothing is
allocated, formatted, or buffered.

Timebases
---------

Host-side records (spans, counters, events) are stamped in seconds of
``time.perf_counter()`` relative to the recorder's epoch.  Bridged
simulation timelines (:func:`bridge_rank_trace`) are in *model seconds*
— a different clock entirely — and sinks keep them in a separate
process group so the two never get compared by accident.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Metrics",
    "Recorder",
    "Span",
    "add",
    "bridge_rank_trace",
    "configure",
    "current",
    "enabled",
    "event",
    "gauge",
    "observe",
    "recording",
    "shutdown",
    "span",
]


class Metrics:
    """Counters, gauges, and histogram summaries by dotted name.

    Counters are monotonically accumulated ints; gauges keep the last
    value set; histograms keep ``count``/``sum``/``min``/``max`` (enough
    for the regression thresholds — full bucket vectors would outlive
    their usefulness here).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def add(self, name: str, n: int = 1) -> int:
        total = self.counters.get(name, 0) + n
        self.counters[name] = total
        return total

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
        else:
            h["count"] += 1
            h["sum"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)

    def snapshot(self) -> dict:
        """JSON-safe copy of every registered metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class Span:
    """One timed interval, emitted on exit.

    Created only through :meth:`Recorder.span`; supports nesting (the
    recorder tracks the stack, and the emitted record carries the
    depth and the dotted path of enclosing span names).
    """

    __slots__ = ("_recorder", "name", "attrs", "_t0", "_depth")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        self._depth = len(self._recorder._stack)
        self._recorder._stack.append(self.name)
        self._t0 = self._recorder.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._recorder.now()
        stack = self._recorder._stack
        if stack and stack[-1] == self.name:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "ts": self._t0,
            "dur": end - self._t0,
            "depth": self._depth,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._recorder.emit(record)
        return False


class _NullSpan:
    """The disabled-tracing span: a stateless, reusable no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Collects spans, events, and metrics, fanning records out to sinks.

    Records are plain dicts (see :mod:`repro.obs.sinks` for the shapes);
    the metrics registry additionally accumulates in memory so a final
    summary record lands in every sink at :meth:`close`.
    """

    def __init__(self, sinks: Iterable[Any] = ()) -> None:
        self.sinks: List[Any] = list(sinks)
        self.metrics = Metrics()
        self._stack: List[str] = []
        self._epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self._closed = False

    # -- time ----------------------------------------------------------
    def now(self) -> float:
        """Seconds since this recorder's epoch (host clock)."""
        return time.perf_counter() - self._epoch

    # -- emission ------------------------------------------------------
    def emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        record: Dict[str, Any] = {"type": "event", "name": name, "ts": self.now()}
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def add(self, name: str, n: int = 1) -> None:
        total = self.metrics.add(name, n)
        self.emit(
            {
                "type": "counter",
                "name": name,
                "ts": self.now(),
                "delta": n,
                "value": total,
            }
        )

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)
        self.emit(
            {"type": "gauge", "name": name, "ts": self.now(), "value": float(value)}
        )

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        self.emit(
            {"type": "sample", "name": name, "ts": self.now(), "value": float(value)}
        )

    def bridge_rank_trace(self, trace: Iterable[Any], rank: int) -> int:
        """Forward one simulated rank's :class:`~repro.runtime.timing.
        TraceEvent` timeline into the sinks.

        Timestamps stay in model seconds; sinks file them under a
        separate "simulated ranks" process.  Returns the event count.
        """
        n = 0
        for e in trace:
            self.emit(
                {
                    "type": "rank_event",
                    "rank": int(rank),
                    "kind": e.kind,
                    "label": e.label,
                    "ts": e.start,
                    "dur": e.end - e.start,
                }
            )
            n += 1
        self.metrics.add(f"sim.trace.rank{rank}.events", n)
        return n

    # -- lifecycle -----------------------------------------------------
    def close(self) -> dict:
        """Emit the final metrics summary, close every sink, and return
        the metrics snapshot.  Idempotent."""
        snap = self.metrics.snapshot()
        if not self._closed:
            self._closed = True
            self.emit({"type": "metrics", "ts": self.now(), "metrics": snap})
            for sink in self.sinks:
                sink.close()
        return snap


# ---------------------------------------------------------------------------
# the module-global switch
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Recorder] = None


def current() -> Optional[Recorder]:
    """The active recorder, or None when tracing is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def configure(*sinks: Any) -> Recorder:
    """Install a fresh recorder writing to ``sinks`` and return it.

    Replaces (and closes) any previously active recorder.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Recorder(sinks)
    return _ACTIVE


def shutdown() -> Optional[dict]:
    """Close the active recorder; return its metrics snapshot (None when
    tracing was already off)."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    if recorder is None:
        return None
    return recorder.close()


@contextmanager
def recording(*sinks: Any):
    """``with recording(MemorySink()) as rec:`` — scoped tracing."""
    recorder = configure(*sinks)
    try:
        yield recorder
    finally:
        if _ACTIVE is recorder:
            shutdown()
        else:  # replaced mid-scope; just make sure it is closed
            recorder.close()


# -- guarded instrumentation helpers (the only API hot code calls) --------


def span(name: str, **attrs: Any):
    """A timed span context manager; a shared no-op when tracing is off."""
    r = _ACTIVE
    if r is None:
        return _NULL_SPAN
    return r.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    r = _ACTIVE
    if r is not None:
        r.event(name, **attrs)


def add(name: str, n: int = 1) -> None:
    """Increment a counter (no-op when tracing is off)."""
    r = _ACTIVE
    if r is not None and n:
        r.add(name, n)


def gauge(name: str, value: float) -> None:
    r = _ACTIVE
    if r is not None:
        r.gauge(name, value)


def observe(name: str, value: float) -> None:
    r = _ACTIVE
    if r is not None:
        r.observe(name, value)


def bridge_rank_trace(trace: Optional[Iterable[Any]], rank: int) -> int:
    r = _ACTIVE
    if r is None or trace is None:
        return 0
    return r.bridge_rank_trace(trace, rank)


def counters() -> Dict[str, int]:
    """Live counter snapshot ({} when tracing is off) — test helper."""
    r = _ACTIVE
    return dict(r.metrics.counters) if r is not None else {}
