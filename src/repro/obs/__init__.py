"""``repro.obs`` — the unified tracing & metrics layer.

One subsystem observes the whole stack: hierarchical **spans** time the
compiler phases, optimizer passes, engine jobs, and simulations; a
**metrics registry** (counters / gauges / histograms) accumulates cache
traffic, IRONMAN call counts, and communication volumes; pluggable
**sinks** receive every record — structured JSONL, a Chrome trace-event
document Perfetto loads directly (with the simulator's per-rank
timelines bridged into the same file), and an in-memory sink for tests.

Tracing is **off by default and zero-cost when off**: every
instrumentation site calls a module-level helper that reads one global
and returns a shared no-op.  Turn it on around any workload::

    from repro import run_study
    from repro.obs import ChromeTraceSink, JsonlSink, recording

    with recording(ChromeTraceSink("trace.json"), JsonlSink("events.jsonl")):
        run_study(benchmarks=("simple",), cache=False)

or from the command line: ``python -m repro trace simple --out
trace.json``.  :mod:`repro.obs.baseline` turns the collected telemetry
into committed regression baselines (``python -m repro compare``).

See ``docs/OBSERVABILITY.md`` for the span names, metric names, record
shapes, and the baseline file format.
"""

from repro.obs.baseline import (
    BASELINE_SCHEMA,
    Drift,
    diff_baseline,
    format_drifts,
    load_baseline,
    snapshot_study,
    write_baseline,
)
from repro.obs.core import (
    Metrics,
    Recorder,
    Span,
    active_trace,
    add,
    bind_trace,
    bridge_rank_trace,
    configure,
    counters,
    current,
    enabled,
    event,
    gauge,
    observe,
    recording,
    shutdown,
    span,
    trace_parent,
    warn_once,
)
from repro.obs.distributed import (
    TRACE_HEADER,
    TraceContext,
    render_prometheus,
)
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink, QueueSink, Sink

__all__ = [
    # core
    "Metrics",
    "Recorder",
    "Span",
    "active_trace",
    "add",
    "bind_trace",
    "bridge_rank_trace",
    "configure",
    "counters",
    "current",
    "enabled",
    "event",
    "gauge",
    "observe",
    "recording",
    "shutdown",
    "span",
    "trace_parent",
    "warn_once",
    # distributed
    "TRACE_HEADER",
    "TraceContext",
    "render_prometheus",
    # sinks
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "QueueSink",
    "Sink",
    # baselines
    "BASELINE_SCHEMA",
    "Drift",
    "diff_baseline",
    "format_drifts",
    "load_baseline",
    "snapshot_study",
    "write_baseline",
]
