"""The experiment-key registry (the paper's Figure 9), engine-neutral.

==================  =============================================  ========
key                 description                                    library
==================  =============================================  ========
baseline            message vectorization                          pvm
rr                  baseline + redundant communication removal     pvm
cc                  rr + communication combination                 pvm
pl                  cc + communication pipelining                  pvm
pl_shmem            pl using shmem_put                             shmem
pl_maxlat           pl with shmem, combining for max latency       shmem
==================  =============================================  ========

The paper's experiments are *cumulative* — each key adds one
optimization — and the library is an orthogonal axis that the last two
keys flip to SHMEM.

This module deliberately sits below both :mod:`repro.engine` and
:mod:`repro.analysis`: the engine needs to resolve keys to optimization
pipelines when fingerprinting jobs, and the analysis layer needs the
same table to drive figures — importing the table from either side used
to create a deferred-import cycle (``engine.jobs`` reached into
``analysis.experiments`` inside function bodies).  Both now import from
here; :mod:`repro.analysis.experiments` re-exports every name so the
historical import paths keep working.

An experiment key resolves to an :class:`ExperimentSpec` (key, opt,
library, description).  ``experiment_spec`` historically returned a bare
``(opt, library, description)`` tuple; the spec still unpacks that way
through a deprecation shim, but new code should use the named fields.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.comm import OptimizationConfig
from repro.errors import ExperimentError

#: Experiment keys in the paper's presentation order.
EXPERIMENT_KEYS: Tuple[str, ...] = (
    "baseline",
    "rr",
    "cc",
    "pl",
    "pl_shmem",
    "pl_maxlat",
)

#: The composition study's keys (:mod:`repro.analysis.composition`).
#: The paper's keys are *cumulative* (``cc`` means rr+cc), so ratios
#: between adjacent keys multiply to exactly the combined ratio — a
#: circular calculation that would make every composition factor 1 by
#: construction.  Independent prediction needs each optimization
#: measured *alone*; ``cc_only``/``pl_only`` exist for that and are
#: deliberately not part of the paper's key set above.
COMPOSITION_KEYS: Tuple[str, ...] = (
    "baseline",
    "rr",
    "cc_only",
    "pl_only",
    "pl",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One of the paper's experiment configurations, by name.

    Attributes
    ----------
    key:
        The experiment key (``"baseline"`` ... ``"pl_maxlat"``).
    opt:
        The resolved :class:`~repro.comm.OptimizationConfig`.
    library:
        The communication library the paper pairs with the key (``pvm``
        for the message-passing keys, ``shmem`` for the last two).
    description:
        The paper's cumulative description of the configuration.
    """

    key: str
    opt: OptimizationConfig
    library: str
    description: str

    def pipeline(self, verify: bool = False):
        """The resolved :class:`~repro.comm.passes.PassPipeline` this key
        compiles to (what the engine fingerprints)."""
        return self.opt.pipeline(verify=verify)

    # -- deprecation shim: the pre-engine API returned a bare
    # (opt, library, description) 3-tuple; keep unpacking working.
    def __iter__(self) -> Iterator:
        warnings.warn(
            "unpacking an ExperimentSpec as an (opt, library, description) "
            "tuple is deprecated; use the .opt/.library/.description fields "
            "(and .key) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return iter((self.opt, self.library, self.description))

    def __len__(self) -> int:
        return 3

    def __getitem__(self, index):
        warnings.warn(
            "indexing an ExperimentSpec like a tuple is deprecated; use "
            "the .opt/.library/.description fields instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return (self.opt, self.library, self.description)[index]


_SPECS: Dict[str, ExperimentSpec] = {
    spec.key: spec
    for spec in (
        ExperimentSpec(
            "baseline",
            OptimizationConfig.baseline(),
            "pvm",
            "message vectorization",
        ),
        ExperimentSpec(
            "rr",
            OptimizationConfig.rr_only(),
            "pvm",
            "baseline with removing redundant communication",
        ),
        ExperimentSpec(
            "cc",
            OptimizationConfig.rr_cc(),
            "pvm",
            "rr with combining communication",
        ),
        ExperimentSpec(
            "pl",
            OptimizationConfig.full(),
            "pvm",
            "cc with pipelining",
        ),
        ExperimentSpec(
            "pl_shmem",
            OptimizationConfig.full(),
            "shmem",
            "pl using shmem_put",
        ),
        ExperimentSpec(
            "pl_maxlat",
            OptimizationConfig.full_max_latency(),
            "shmem",
            "pl with shmem, combining for maximum latency hiding",
        ),
        # single-optimization keys for the composition study: each
        # optimization alone over the vectorized baseline (the pass
        # legality model admits both — combining's redundancy ordering
        # is a soft constraint, pipelining is merely terminal)
        ExperimentSpec(
            "cc_only",
            OptimizationConfig(cc=True),
            "pvm",
            "combining communication alone (composition study)",
        ),
        ExperimentSpec(
            "pl_only",
            OptimizationConfig(pl=True),
            "pvm",
            "pipelining alone (composition study)",
        ),
    )
}


def experiment_spec(key: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for an experiment key."""
    try:
        return _SPECS[key]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {key!r} (valid: {', '.join(_SPECS)})"
        ) from None


@dataclass(frozen=True)
class ExperimentResult:
    """One cell of a Table 1-4 style table."""

    benchmark: str
    experiment: str
    library: str
    static_count: int
    dynamic_count: int
    execution_time: float

    def scaled_to(self, baseline: "ExperimentResult") -> float:
        """Execution time relative to a baseline run (the paper's plots)."""
        return self.execution_time / baseline.execution_time


__all__ = [
    "COMPOSITION_KEYS",
    "EXPERIMENT_KEYS",
    "ExperimentResult",
    "ExperimentSpec",
    "experiment_spec",
]
