"""The four IRONMAN call kinds."""

from __future__ import annotations

import enum


class CallKind(enum.Enum):
    """One of the four IRONMAN calls demarcating a data transfer.

    The names abbreviate the program state at the call site:

    ``DR``
        *Destination Ready*: from here on the destination buffer (the
        fluff region) may be written by the transfer.
    ``SR``
        *Source Ready*: the source data is in its final state; the
        transfer may read (and ship) it from here on.
    ``DN``
        *Destination Needed*: the destination is about to use the data;
        the transfer must be complete past this point.
    ``SV``
        *Source Volatile*: the source is about to overwrite its buffer;
        the transfer must have finished reading it past this point.
    """

    DR = "destination ready"
    SR = "source ready"
    DN = "destination needed"
    SV = "source volatile"

    @property
    def is_source_side(self) -> bool:
        """True for the calls executed on behalf of the sending role."""
        return self in (CallKind.SR, CallKind.SV)

    @property
    def is_destination_side(self) -> bool:
        return self in (CallKind.DR, CallKind.DN)


#: Canonical order of the calls for one transfer in naive generated code.
NAIVE_ORDER = (CallKind.DR, CallKind.SR, CallKind.DN, CallKind.SV)
