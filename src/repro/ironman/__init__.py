"""The IRONMAN architecture-independent communication interface.

IRONMAN (Chamberlain, Choi & Snyder 1996) expresses a single data transfer
as four library calls that *demarcate program states* rather than naming a
mechanism:

* ``DR`` — destination ready to receive the transmission;
* ``SR`` — source ready for transmission;
* ``DN`` — transmitted data needed at the destination;
* ``SV`` — transmission must be completed at the source, since the source
  data may become volatile (be overwritten).

At link time — here, at machine-construction time — each call is bound to
a concrete primitive of the target library or to a no-op.  The bindings
used in the paper (its Figure 5) are reproduced by
:func:`~repro.ironman.bindings.binding_for`.
"""

from repro.ironman.calls import CallKind
from repro.ironman.bindings import Binding, BindingTable, binding_for, BINDINGS

__all__ = ["CallKind", "Binding", "BindingTable", "binding_for", "BINDINGS"]
