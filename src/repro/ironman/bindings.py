"""IRONMAN bindings per communication library (the paper's Figure 5).

A :class:`Binding` maps each of the four IRONMAN calls to a named
primitive of the underlying library (or to ``noop``).  The machine layer
(:mod:`repro.machine.primitives`) assigns cost semantics to the primitive
names; this module is pure naming, mirroring the link-time mapping the
paper describes.

===================  ========  ========  ==========  =========  ===========
call                 NX        NX async  NX callback  T3D PVM    T3D SHMEM
===================  ========  ========  ==========  =========  ===========
DR (dest ready)      no-op     irecv     hprobe       no-op      synch
SR (source ready)    csend     isend     hsend        pvm_send   shmem_put
DN (dest needed)     crecv     msgwait   hrecv        pvm_recv   synch
SV (source volatile) no-op     msgwait   msgwait      no-op      no-op
===================  ========  ========  ==========  =========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import MachineError
from repro.ironman.calls import CallKind

#: Name used for calls that compile away entirely.
NOOP = "noop"


@dataclass(frozen=True)
class Binding:
    """Binding of the four IRONMAN calls for one library."""

    library: str
    dr: str
    sr: str
    dn: str
    sv: str

    def primitive(self, kind: CallKind) -> str:
        """The primitive name bound to ``kind``."""
        return {
            CallKind.DR: self.dr,
            CallKind.SR: self.sr,
            CallKind.DN: self.dn,
            CallKind.SV: self.sv,
        }[kind]

    def as_rows(self) -> Tuple[Tuple[str, str], ...]:
        """(call, primitive) rows in canonical order — used to print the
        paper's Figure 5."""
        return (
            ("DR", self.dr),
            ("SR", self.sr),
            ("DN", self.dn),
            ("SV", self.sv),
        )


#: Library name -> binding, following the paper's Figure 5 exactly.
BINDINGS: Dict[str, Binding] = {
    # Intel Paragon, NX message passing (csend/crecv)
    "nx": Binding("nx", dr=NOOP, sr="csend", dn="crecv", sv=NOOP),
    # Intel Paragon, NX asynchronous (co-processor) primitives
    "nx_async": Binding("nx_async", dr="irecv", sr="isend", dn="msgwait", sv="msgwait"),
    # Intel Paragon, NX callback (handler) primitives
    "nx_callback": Binding(
        "nx_callback", dr="hprobe", sr="hsend", dn="hrecv", sv="msgwait"
    ),
    # Cray T3D, vendor-optimized PVM message passing
    "pvm": Binding("pvm", dr=NOOP, sr="pvm_send", dn="pvm_recv", sv=NOOP),
    # Cray T3D, SHMEM one-way communication.  The prototype IRONMAN
    # implementation the paper evaluates uses heavyweight synchronization
    # for DR and DN.
    "shmem": Binding("shmem", dr="synch", sr="shmem_put", dn="synch", sv=NOOP),
}

#: The wire format of BindingTable is just the mapping itself.
BindingTable = Dict[str, Binding]


def binding_for(library: str) -> Binding:
    """Look up the binding for a library name.

    Raises
    ------
    MachineError
        For unknown library names; the message lists the valid ones.
    """
    try:
        return BINDINGS[library]
    except KeyError:
        valid = ", ".join(sorted(BINDINGS))
        raise MachineError(
            f"unknown communication library {library!r} (valid: {valid})"
        ) from None
