"""repro — reproduction of Choi & Snyder, "Quantifying the Effects of
Communication Optimizations" (ICPP 1997).

A from-scratch implementation of the paper's entire system:

* **ZL**, a ZPL-like data-parallel array sublanguage (regions,
  directions, the ``@`` shift operator, reductions) with a full front
  end — :mod:`repro.frontend`;
* an SPMD intermediate representation with source-level basic blocks —
  :mod:`repro.ir`;
* the paper's machine-independent **communication optimizer**: redundant
  communication removal, communication combination (two heuristics), and
  communication pipelining, each individually switchable —
  :mod:`repro.comm`;
* the **IRONMAN** four-call communication interface and its per-library
  bindings — :mod:`repro.ironman`;
* cost-model simulations of the **Intel Paragon** (NX) and **Cray T3D**
  (PVM + SHMEM) — :mod:`repro.machine`;
* a discrete-event **SPMD runtime** with distributed arrays, fluff
  regions, real data movement and per-processor clocks —
  :mod:`repro.runtime`;
* the paper's four **benchmark programs** (TOMCATV, SWM, SIMPLE, SP) and
  its synthetic overhead benchmark — :mod:`repro.programs`;
* the **experiment harness** regenerating every figure and table —
  :mod:`repro.analysis`;
* a parallel, content-addressed **experiment engine** running the
  whole-program study as a cached job matrix — :mod:`repro.engine`,
  fronted by :func:`run_study`:

  >>> study = run_study(benchmarks=("swm",), nprocs=16, jobs=4)  # doctest: +SKIP

* a **parameter-sweep subsystem** deriving validated machine variants
  (latencies, bandwidths, primitive-cost fields, processor counts) and
  running the study matrix over every point, with scaling curves and
  automatic win/loss crossover detection — :mod:`repro.sweep` and
  :mod:`repro.analysis.scaling`, fronted by :func:`run_sweep`:

  >>> sweep = run_sweep(axes=[SweepAxis("nprocs", (4, 16, 64))])  # doctest: +SKIP

* a unified **observability layer** — hierarchical spans, a metrics
  registry, JSONL / Perfetto (Chrome trace-event) / in-memory sinks,
  and telemetry-driven regression baselines — :mod:`repro.obs`, wired
  through the whole stack and zero-cost when disabled (the default):

  >>> from repro.obs import MemorySink, recording  # doctest: +SKIP
  >>> with recording(MemorySink()) as rec:         # doctest: +SKIP
  ...     run_study(benchmarks=("simple",))

Quickstart
----------

>>> from repro import compile_program, OptimizationConfig, t3d, simulate
>>> source = '''
... program demo;
... config n : integer = 16;
... region R  = [1..n, 1..n];
... region In = [2..n-1, 2..n-1];
... direction east = [0, 1];  direction west = [0, -1];
... var A, B : [R] double;
... procedure main();
... begin
...   [R] A := index1 + index2;
...   [In] B := 0.5 * (A@east + A@west);
... end;
... '''
>>> program = compile_program(source, opt=OptimizationConfig.full())
>>> result = simulate(program, t3d(16))
>>> result.dynamic_comm_count
2
"""

from repro.comm import (
    OptimizationConfig,
    PassPipeline,
    PipelineReport,
    optimize,
    optimize_with_report,
    static_comm_count,
)
from repro.experiments_registry import ExperimentSpec, experiment_spec
from repro.engine import (
    ExperimentEngine,
    Job,
    MachineSpec,
    StudyResult,
    load_telemetry,
    run_study,
)
from repro.errors import (
    BaselineError,
    LexError,
    MachineError,
    OptimizationError,
    ParseError,
    ReproError,
    RuntimeFault,
    SemanticError,
)
from repro import obs
from repro.fit import FitResult, FitTarget, fit_machine, load_target, synthesize_target
from repro.sweep import RefinedSweep, SweepAxis, run_refined_sweep, run_sweep
from repro.frontend import analyze, parse
from repro.ir import emit_c, lower
from repro.machine import Machine, machine_by_name, paragon, t3d
from repro.programs.common import compile_source as compile_program
from repro.programs.generate import (
    GeneratorProfile,
    generate_program,
    generate_source,
)
from repro.runtime import (
    BatchResult,
    BatchRun,
    ExecutionMode,
    RunResult,
    SimOptions,
    reference_run,
    simulate,
    simulate_many,
)

__version__ = "1.0.0"

#: Lazily re-exported names (PEP 562): the composition study lives in
#: the analysis layer, which sits *above* the engine — importing it
#: eagerly here would make ``import repro.engine`` load the analysis
#: package and break the layering the registry split established.
_LAZY_EXPORTS = {
    "run_composition": "repro.analysis.composition",
    "CompositionCell": "repro.analysis.composition",
    "CompositionResult": "repro.analysis.composition",
}


def __getattr__(name):
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(target), name)

__all__ = [
    # compilation
    "parse",
    "analyze",
    "lower",
    "optimize",
    "compile_program",
    "emit_c",
    "OptimizationConfig",
    "PassPipeline",
    "PipelineReport",
    "optimize_with_report",
    "static_comm_count",
    # program generation
    "GeneratorProfile",
    "generate_program",
    "generate_source",
    # the experiment engine
    "run_study",
    "run_composition",
    "CompositionCell",
    "CompositionResult",
    "run_sweep",
    "run_refined_sweep",
    "RefinedSweep",
    "SweepAxis",
    "load_telemetry",
    "ExperimentEngine",
    "ExperimentSpec",
    "experiment_spec",
    "Job",
    "MachineSpec",
    "StudyResult",
    # machines
    "Machine",
    "paragon",
    "t3d",
    "machine_by_name",
    # calibration
    "fit_machine",
    "load_target",
    "synthesize_target",
    "FitResult",
    "FitTarget",
    # execution
    "simulate",
    "simulate_many",
    "reference_run",
    "ExecutionMode",
    "RunResult",
    "BatchResult",
    "BatchRun",
    "SimOptions",
    # observability
    "obs",
    # errors
    "ReproError",
    "BaselineError",
    "LexError",
    "ParseError",
    "SemanticError",
    "OptimizationError",
    "MachineError",
    "RuntimeFault",
    "__version__",
]
