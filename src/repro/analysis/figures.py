"""Regeneration of every figure and table in the paper's evaluation.

Each ``figure*``/``table*`` function returns ``(headers, rows)`` ready
for :func:`repro.analysis.report.format_table`.  Functions over the
whole-program study are *pure consumers* of precomputed engine results —
any mapping of ``benchmark -> [ExperimentResult, ...]`` in key order: a
:class:`repro.engine.StudyResult` from :func:`repro.run_study` or the
plain dict from the legacy
:func:`repro.analysis.experiments.run_benchmark_suite`.  One grid of
simulations feeds Figures 8, 10, 11, 12 and Tables 1-4 — mirroring how
the paper derives all of them from one set of runs — and the figures
never trigger simulation themselves.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.experiments import EXPERIMENT_KEYS, ExperimentResult
from repro.comm import OptimizationConfig
from repro.ir import emit_c
from repro.machine import paragon, t3d
from repro.programs import BENCHMARKS, build_benchmark
from repro.programs.synthetic import DEFAULT_SIZES, measured_overhead

Rows = Tuple[List[str], List[List]]

_PAPER_TABLES: Dict[str, Dict[str, Tuple[int, int, float]]] = {
    # benchmark -> experiment -> (static, dynamic, time) from Tables 1-4
    "tomcatv": {
        "baseline": (46, 40400, 2.491051),
        "rr": (22, 39200, 2.327301),
        "cc": (10, 13200, 1.901393),
        "pl": (10, 13200, 1.875820),
        "pl_shmem": (10, 13200, 2.029861),
        "pl_maxlat": (22, 39200, 2.148066),
    },
    "swm": {
        "baseline": (29, 8602, 6.809007),
        "rr": (22, 7202, 6.323369),
        "cc": (16, 6002, 6.191816),
        "pl": (16, 6002, 5.922135),
        "pl_shmem": (16, 6002, 5.454957),
        "pl_maxlat": (16, 6002, 5.477305),
    },
    "simple": {
        "baseline": (266, 28188, 66.749756),
        "rr": (103, 21433, 61.193568),
        "cc": (79, 10993, 53.962579),
        "pl": (79, 10993, 48.077192),
        "pl_shmem": (79, 10993, 33.720775),
        "pl_maxlat": (84, 16143, 43.637907),
    },
    "sp": {
        "baseline": (212, 85982, 22.572110),
        "rr": (114, 70094, 20.381131),
        "cc": (84, 44286, 19.274767),
        "pl": (84, 44286, 18.149760),
        "pl_shmem": (84, 44286, 19.079338),
        # the paper could not run SP under pl_maxlat (library bug);
        # counts are from its Table 4, the time is absent
        "pl_maxlat": (92, 53487, float("nan")),
    },
}


def paper_value(benchmark: str, experiment: str) -> Tuple[int, int, float]:
    """(static, dynamic, time) the paper reports for one table cell."""
    return _PAPER_TABLES[benchmark][experiment]


def has_paper_values(benchmark: str) -> bool:
    """Whether the paper reports a table for ``benchmark`` — False for
    kernels and generated programs, which get measured-only tables."""
    return benchmark in _PAPER_TABLES


# ---------------------------------------------------------------------------
# machine-description figures
# ---------------------------------------------------------------------------


def figure3_machines() -> Rows:
    """Machine parameters and communication libraries (paper Figure 3)."""
    rows = [
        [
            "Intel Paragon (50 MHz)",
            "NX (message passing)",
            "~100 ns",
        ],
        [
            "Cray T3D (150 MHz)",
            "PVM (message passing), SHMEM (shared memory)",
            "~150 ns",
        ],
    ]
    return (["machine", "communication library", "timer granularity"], rows)


def figure5_bindings() -> Rows:
    """IRONMAN bindings on the Paragon and T3D (paper Figure 5)."""
    from repro.ironman.bindings import BINDINGS

    order = ["nx", "nx_async", "nx_callback", "pvm", "shmem"]
    headers = ["call"] + order
    rows = []
    for call in ("DR", "SR", "DN", "SV"):
        row: List = [call]
        for lib in order:
            binding = BINDINGS[lib]
            prim = dict(binding.as_rows())[call]
            row.append("no-op" if prim == "noop" else prim)
        rows.append(row)
    return (headers, rows)


# ---------------------------------------------------------------------------
# Figure 6: exposed communication cost
# ---------------------------------------------------------------------------


def figure6_overhead(
    sizes: Sequence[int] = DEFAULT_SIZES, reps: int = 1000
) -> Rows:
    """Exposed communication costs vs message size for all five
    primitive sets (paper Figure 6), measured through the simulator."""
    curves = {
        "csend/crecv": measured_overhead(paragon, "nx", sizes, reps),
        "isend/irecv": measured_overhead(paragon, "nx_async", sizes, reps),
        "hsend/hrecv": measured_overhead(paragon, "nx_callback", sizes, reps),
        "pvm": measured_overhead(t3d, "pvm", sizes, reps),
        "shmem": measured_overhead(t3d, "shmem", sizes, reps),
    }
    headers = ["doubles"] + [f"{name} (us)" for name in curves]
    rows = []
    for i, size in enumerate(sizes):
        row: List = [int(size)]
        for points in curves.values():
            row.append(points[i].exposed_microseconds)
        rows.append(row)
    return (headers, rows)


# ---------------------------------------------------------------------------
# Figure 7: benchmark programs
# ---------------------------------------------------------------------------

_DESCRIPTIONS = {
    "tomcatv": "Thompson solver and grid generation (SPEC)",
    "swm": "Weather prediction (shallow water model)",
    "simple": "Hydrodynamics simulation (Livermore Labs)",
    "sp": "CFD computation (NAS Application Benchmarks)",
}

#: Line counts of the original benchmarks' generated C (paper Figure 7).
PAPER_LINE_COUNTS = {"tomcatv": 598, "swm": 1570, "simple": 2293, "sp": 7866}


def figure7_programs() -> Rows:
    """Benchmark programs with generated-C line counts excluding
    communication (paper Figure 7)."""
    rows = []
    for name in BENCHMARKS:
        program = build_benchmark(name, opt=OptimizationConfig.full())
        emitted = emit_c(program)
        rows.append(
            [
                name,
                _DESCRIPTIONS[name],
                emitted.lines_excluding_comm,
                PAPER_LINE_COUNTS[name],
            ]
        )
    return (
        ["program", "description", "C lines (ours)", "C lines (paper)"],
        rows,
    )


# ---------------------------------------------------------------------------
# whole-program figures/tables (over precomputed suite results)
# ---------------------------------------------------------------------------


def _by_key(results: List[ExperimentResult]) -> Dict[str, ExperimentResult]:
    return {r.experiment: r for r in results}


def figure8_counts(results: Mapping[str, List[ExperimentResult]]) -> Rows:
    """Static and dynamic communication counts for rr and cc, scaled to
    baseline (paper Figure 8)."""
    headers = [
        "benchmark",
        "rr static",
        "cc static",
        "rr dynamic",
        "cc dynamic",
    ]
    rows = []
    for bench, res in results.items():
        by = _by_key(res)
        base = by["baseline"]
        rows.append(
            [
                bench,
                by["rr"].static_count / base.static_count,
                by["cc"].static_count / base.static_count,
                by["rr"].dynamic_count / base.dynamic_count,
                by["cc"].dynamic_count / base.dynamic_count,
            ]
        )
    return (headers, rows)


def figure10a_times(results: Mapping[str, List[ExperimentResult]]) -> Rows:
    """Scaled execution times using PVM (paper Figure 10(a))."""
    headers = ["benchmark", "baseline", "rr", "cc", "pl"]
    rows = []
    for bench, res in results.items():
        by = _by_key(res)
        base = by["baseline"]
        rows.append(
            [bench]
            + [by[k].scaled_to(base) for k in ("baseline", "rr", "cc", "pl")]
        )
    return (headers, rows)


def figure10b_times(results: Mapping[str, List[ExperimentResult]]) -> Rows:
    """Scaled execution times: pl vs pl with shmem (paper Figure 10(b))."""
    headers = ["benchmark", "pl", "pl with shmem"]
    rows = []
    for bench, res in results.items():
        by = _by_key(res)
        base = by["baseline"]
        rows.append(
            [bench, by["pl"].scaled_to(base), by["pl_shmem"].scaled_to(base)]
        )
    return (headers, rows)


def figure11_heuristic_counts(
    results: Mapping[str, List[ExperimentResult]]
) -> Rows:
    """Counts under the two combining heuristics, scaled to baseline
    (paper Figure 11)."""
    headers = [
        "benchmark",
        "max-comb static",
        "max-lat static",
        "max-comb dynamic",
        "max-lat dynamic",
    ]
    rows = []
    for bench, res in results.items():
        by = _by_key(res)
        base = by["baseline"]
        rows.append(
            [
                bench,
                by["pl_shmem"].static_count / base.static_count,
                by["pl_maxlat"].static_count / base.static_count,
                by["pl_shmem"].dynamic_count / base.dynamic_count,
                by["pl_maxlat"].dynamic_count / base.dynamic_count,
            ]
        )
    return (headers, rows)


def figure12_heuristic_times(
    results: Mapping[str, List[ExperimentResult]]
) -> Rows:
    """Scaled running times under the two combining heuristics (paper
    Figure 12).  Unlike the paper — whose library bug blocked SP — every
    benchmark runs."""
    headers = ["benchmark", "pl with shmem", "pl with max latency"]
    rows = []
    for bench, res in results.items():
        by = _by_key(res)
        base = by["baseline"]
        rows.append(
            [
                bench,
                by["pl_shmem"].scaled_to(base),
                by["pl_maxlat"].scaled_to(base),
            ]
        )
    return (headers, rows)


def table_full(
    benchmark: str, results: Mapping[str, List[ExperimentResult]]
) -> Rows:
    """One of Tables 1-4: full counts and times for every experiment,
    with the paper's values alongside.  Benchmarks the paper does not
    report (kernels, generated programs) get measured-only tables."""
    headers = [
        "experiment",
        "static",
        "dynamic",
        "time (s)",
        "scaled",
    ]
    with_paper = has_paper_values(benchmark)
    if with_paper:
        headers += ["paper static", "paper dynamic", "paper scaled"]
    by = _by_key(results[benchmark])
    base = by["baseline"]
    p_base = paper_value(benchmark, "baseline") if with_paper else None
    rows = []
    for key in EXPERIMENT_KEYS:
        r = by[key]
        row = [
            key,
            r.static_count,
            r.dynamic_count,
            r.execution_time,
            r.scaled_to(base),
        ]
        if with_paper:
            ps, pd, pt = paper_value(benchmark, key)
            row += [ps, pd, pt / p_base[2]]
        rows.append(row)
    return (headers, rows)
