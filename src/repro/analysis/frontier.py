"""Frontier analysis: 2-D crossover maps and Pareto surfaces.

The paper's win/loss story is one-dimensional per figure — a ratio
against one machine parameter.  This module lifts it to surfaces:

* :func:`crossover_map` traces where each incremental optimization's
  ratio crosses the threshold in a two-axis sweep — one contour point
  per value of the second axis, turning "the combining knee is at 4 KB"
  into "here is the knee as a function of wire latency";
* :func:`winner_map` grids the best experiment key over both axes (the
  discrete view of the same surface);
* :func:`pareto_front` / :func:`pareto_surface` keep the non-dominated
  ``(machine cost, time)`` points per benchmark — the machines for
  which no cheaper parameter value is also faster.

Everything consumes :class:`~repro.sweep.SweepResult` /
:class:`~repro.sweep.RefinedSweep` values; nothing here simulates.
Emission follows :mod:`repro.analysis.scaling`: CSV floats are
``%.6g``, JSON is full precision under a versioned ``schema`` key.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.analysis.scaling import _format_cell, find_crossings, speedup_curve
from repro.sweep.axes import AxisValue
from repro.sweep.core import SweepResult

if TYPE_CHECKING:  # avoid the sweep.refine <-> analysis import cycle
    from repro.sweep.refine import RefinedSweep

__all__ = [
    "FRONTIER_SCHEMA",
    "ContourPoint",
    "ParetoPoint",
    "crossover_map",
    "format_frontier_report",
    "format_refined_report",
    "frontier_doc",
    "pareto_front",
    "pareto_surface",
    "refined_doc",
    "winner_map",
    "write_frontier_csv",
    "write_frontier_json",
    "write_refined_json",
]

#: Schema version of the emitted frontier CSV/JSON documents.
FRONTIER_SCHEMA = 1


@dataclass(frozen=True)
class ContourPoint:
    """One point of a crossover contour: at ``y`` (the second axis),
    the ratio ``time(experiment)/time(reference)`` crosses the
    threshold at ``x_estimate`` along the first axis."""

    benchmark: str
    experiment: str
    reference: str
    y: AxisValue
    x_low: AxisValue
    x_high: AxisValue
    x_estimate: float
    ratio_low: float
    ratio_high: float


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated ``(machine cost, time)`` point of a benchmark's
    trade-off curve, flagged if no other point dominates it."""

    benchmark: str
    experiment: str
    x: float
    time: float
    on_front: bool


def crossover_map(
    sweep: SweepResult,
    x_axis: str,
    y_axis: str,
    threshold: float = 1.0,
) -> List[ContourPoint]:
    """The crossover contours of a two-axis sweep.

    For every benchmark and every incremental key pair, scans the ratio
    curve along ``x_axis`` at each ``y_axis`` value and records each
    threshold crossing — the contour of the win/loss boundary in the
    ``(x, y)`` plane, ordered by (benchmark, experiment, y).
    """
    names = [a.name for a in sweep.axes]
    for name in (x_axis, y_axis):
        if name not in names:
            raise KeyError(f"axis {name!r} not in sweep axes {names}")
    keys = list(sweep.keys)
    out: List[ContourPoint] = []
    for bench in sweep.benchmarks:
        for prev, key in zip(keys, keys[1:]):
            for group, curve in speedup_curve(
                sweep, x_axis, bench, key, reference=prev
            ):
                coords = dict(group)
                if y_axis not in coords:
                    continue
                for x0, x1, est, r0, r1 in find_crossings(curve, threshold):
                    out.append(
                        ContourPoint(
                            benchmark=bench,
                            experiment=key,
                            reference=prev,
                            y=coords[y_axis],
                            x_low=x0,
                            x_high=x1,
                            x_estimate=est,
                            ratio_low=r0,
                            ratio_high=r1,
                        )
                    )
    return out


def winner_map(
    sweep: SweepResult, x_axis: str, y_axis: str
) -> List[Tuple[str, AxisValue, AxisValue, str]]:
    """The best key per grid cell: ``(benchmark, y, x, winner)`` rows
    ordered by (benchmark, y, x) — the discrete picture whose
    boundaries :func:`crossover_map` localizes."""
    rows: List[Tuple[str, AxisValue, AxisValue, str]] = []
    for bench in sweep.benchmarks:
        cells: Dict[Tuple[AxisValue, AxisValue], Dict[str, float]] = {}
        for point, block in sweep.iter_points():
            times = {
                o.job.experiment: o.result.execution_time
                for o in block
                if o.job.benchmark == bench
            }
            if times:
                cells[(point.coord(y_axis), point.coord(x_axis))] = times
        for (y, x), times in sorted(cells.items()):
            winner = min(
                sweep.keys, key=lambda k: times.get(k, float("inf"))
            )
            rows.append((bench, y, x, winner))
    return rows


def pareto_front(
    points: Sequence[Tuple[float, float]]
) -> List[bool]:
    """Non-dominated mask over ``(x, y)`` points, both minimized.

    A point is on the front when no other point is <= in both
    coordinates and strictly < in at least one.  Duplicate points are
    all kept (neither strictly improves on the other).
    """
    n = len(points)
    mask = [True] * n
    for i, (xi, yi) in enumerate(points):
        for j, (xj, yj) in enumerate(points):
            if j == i:
                continue
            if (
                xj <= xi
                and yj <= yi
                and (xj < xi or yj < yi)
            ):
                mask[i] = False
                break
    return mask


def pareto_surface(
    sweep: SweepResult,
    axis: str,
    benchmark: Optional[str] = None,
    experiment: Optional[str] = None,
) -> List[ParetoPoint]:
    """The ``{machine axis} x {time}`` trade-off points of a sweep.

    For each benchmark (optionally one), collects every evaluated
    ``(axis value, execution time)`` pair — per experiment key, or one
    key if given — and flags the non-dominated ones: the machine
    parameter values for which no cheaper (lower) value is also faster.
    The front is computed per benchmark across all included keys, so it
    answers "which (parameter, optimization) settings are worth
    having".
    """
    benches = (benchmark,) if benchmark else sweep.benchmarks
    keys = (experiment,) if experiment else sweep.keys
    out: List[ParetoPoint] = []
    for bench in benches:
        entries: List[Tuple[str, float, float]] = []
        for point, block in sweep.iter_points():
            x = float(point.coord(axis))
            for o in block:
                if o.job.benchmark == bench and o.job.experiment in keys:
                    entries.append(
                        (o.job.experiment, x, o.result.execution_time)
                    )
        mask = pareto_front([(x, t) for _, x, t in entries])
        out.extend(
            ParetoPoint(
                benchmark=bench,
                experiment=key,
                x=x,
                time=t,
                on_front=on,
            )
            for (key, x, t), on in zip(entries, mask)
        )
    return out


# ---------------------------------------------------------------------------
# emission
# ---------------------------------------------------------------------------

_CONTOUR_HEADERS = [
    "benchmark",
    "experiment",
    "vs",
    "y",
    "x_low",
    "x_high",
    "x_estimate",
    "ratio_low",
    "ratio_high",
]


def _contour_rows(contours: Sequence[ContourPoint]) -> List[List]:
    return [
        [
            c.benchmark,
            c.experiment,
            c.reference,
            c.y,
            c.x_low,
            c.x_high,
            c.x_estimate,
            c.ratio_low,
            c.ratio_high,
        ]
        for c in contours
    ]


def write_frontier_csv(
    path: Union[str, Path],
    contours: Sequence[ContourPoint],
    x_axis: str,
    y_axis: str,
) -> Path:
    """The contour table as CSV: a comment-free header row naming the
    axes via the ``x_estimate``/``y`` columns, floats ``%.6g``."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["x_axis", "y_axis"])
        writer.writerow([x_axis, y_axis])
        writer.writerow(_CONTOUR_HEADERS)
        for row in _contour_rows(contours):
            writer.writerow([_format_cell(cell) for cell in row])
    return path


def frontier_doc(
    sweep: SweepResult,
    x_axis: str,
    y_axis: str,
    threshold: float = 1.0,
) -> dict:
    """The full-precision frontier document for a two-axis sweep."""
    contours = crossover_map(sweep, x_axis, y_axis, threshold)
    winners = winner_map(sweep, x_axis, y_axis)
    return {
        "schema": FRONTIER_SCHEMA,
        "x_axis": x_axis,
        "y_axis": y_axis,
        "threshold": threshold,
        "benchmarks": list(sweep.benchmarks),
        "keys": list(sweep.keys),
        "contours": [asdict(c) for c in contours],
        "winners": [
            {"benchmark": b, "y": y, "x": x, "winner": w}
            for b, y, x, w in winners
        ],
    }


def write_frontier_json(
    path: Union[str, Path],
    sweep: SweepResult,
    x_axis: str,
    y_axis: str,
    threshold: float = 1.0,
) -> Path:
    path = Path(path)
    doc = frontier_doc(sweep, x_axis, y_axis, threshold)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def refined_doc(refined: RefinedSweep) -> dict:
    """The full-precision document of one refinement run: localized
    crossovers, winner flips, and the evaluation ledger."""
    return {
        "schema": FRONTIER_SCHEMA,
        "axis": refined.axis,
        "lo": refined.lo,
        "hi": refined.hi,
        "tol": refined.tol,
        "threshold": refined.threshold,
        "rounds": refined.rounds,
        "round_values": [list(vs) for vs in refined.round_values],
        "round_fingerprints": list(refined.round_fingerprints),
        "points_evaluated": refined.points_evaluated,
        "dense_points": refined.dense_points,
        "savings": refined.savings,
        "crossovers": [asdict(c) for c in refined.crossovers],
        "winner_flips": [asdict(f) for f in refined.winner_flips],
    }


def write_refined_json(
    path: Union[str, Path], refined: RefinedSweep
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(refined_doc(refined), indent=1, sort_keys=True) + "\n"
    )
    return path


def format_frontier_report(
    sweep: SweepResult,
    x_axis: str,
    y_axis: str,
    threshold: float = 1.0,
) -> str:
    """The CLI's text view of a two-axis frontier: contours, then the
    winner grid."""
    contours = crossover_map(sweep, x_axis, y_axis, threshold)
    parts = []
    if contours:
        parts.append(
            format_table(
                _CONTOUR_HEADERS,
                _contour_rows(contours),
                float_fmt=".6g",
                title=f"Crossover contours — x={x_axis}, y={y_axis}, "
                f"{len(contours)} points",
            )
        )
    else:
        parts.append(
            f"Crossover contours — none (x={x_axis}, y={y_axis})"
        )
    winners = winner_map(sweep, x_axis, y_axis)
    parts.append(
        format_table(
            ["benchmark", "y", "x", "winner"],
            [list(row) for row in winners],
            float_fmt=".6g",
            title="Winner grid — fastest key per cell",
        )
    )
    return "\n\n".join(parts)


def format_refined_report(refined: RefinedSweep) -> str:
    """The CLI's text view of a refinement run."""
    parts = [
        f"Refined {refined.axis} on [{refined.lo:.6g}, {refined.hi:.6g}] "
        f"to tol={refined.tol:.6g}: {refined.points_evaluated} evaluations "
        f"over {refined.rounds} rounds "
        f"(dense grid: {refined.dense_points}, {refined.savings:.1f}x fewer)"
    ]
    if refined.crossovers:
        rows = [
            [
                c.benchmark,
                c.experiment,
                c.reference,
                c.direction,
                c.x_low,
                c.x_high,
                c.x_estimate,
            ]
            for c in refined.crossovers
        ]
        parts.append(
            format_table(
                [
                    "benchmark",
                    "experiment",
                    "vs",
                    "direction",
                    "x_low",
                    "x_high",
                    "x_estimate",
                ],
                rows,
                float_fmt=".6g",
                title=f"Localized crossovers — {len(refined.crossovers)}",
            )
        )
    else:
        parts.append("Localized crossovers — none detected")
    if refined.winner_flips:
        rows = [
            [f.benchmark, f.from_key, f.to_key, f.x_low, f.x_high]
            for f in refined.winner_flips
        ]
        parts.append(
            format_table(
                ["benchmark", "from", "to", "x_low", "x_high"],
                rows,
                float_fmt=".6g",
                title=f"Winner flips — {len(refined.winner_flips)}",
            )
        )
    return "\n\n".join(parts)
