"""Plain-text table rendering for the harness and benchmarks.

Everything the paper shows as a bar chart is rendered here as an aligned
table of the same series (we regenerate the *data* of each figure; the
bars are the reader's imagination).  A tiny ASCII bar helper is included
for terminal niceness.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell, float_fmt: str) -> str:
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_fmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Numbers are right-aligned, text left-aligned; floats use
    ``float_fmt``.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    numeric: List[bool] = [False] * len(headers)
    body = []
    for row in rows:
        cells = [_render(c, float_fmt) for c in row]
        body.append(cells)
        for i, c in enumerate(row):
            if isinstance(c, (int, float)):
                numeric[i] = True
    rendered.extend(body)
    widths = [
        max(len(r[i]) for r in rendered if i < len(r))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for irow, row in enumerate(rendered):
        cells = []
        for i, cell in enumerate(row):
            if numeric[i] and irow > 0:
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        lines.append(" | ".join(cells))
        if irow == 0:
            lines.append(sep.replace("-+-", "-+-"))
    return "\n".join(lines)


def ascii_bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    """A proportional bar for terminal output (value/scale clipped to
    [0, 1] maps to 0..width characters)."""
    if scale <= 0:
        return ""
    frac = max(0.0, min(1.0, value / scale))
    n = int(round(frac * width))
    return "#" * n
