"""The experiment harness: the paper's evaluation section as code.

:mod:`repro.analysis.experiments` runs benchmark x experiment grids
(submitted through the :mod:`repro.engine` job engine) over the keys
defined in :mod:`repro.experiments_registry`;
:mod:`repro.analysis.figures` regenerates each figure/table's rows;
:mod:`repro.analysis.attribution` breaks each cell's reduction down by
optimizer pass using engine telemetry;
:mod:`repro.analysis.scaling` turns :mod:`repro.sweep` results into
per-optimization curves, crossovers, and CSV/JSON documents;
:mod:`repro.analysis.composition` measures whether rr/cc/pl compose
multiplicatively (predicted-from-singles vs measured-combined) across
the benchmark x machine-variant grid;
:mod:`repro.analysis.report` renders them as aligned text tables.
"""

from repro.analysis.composition import (
    CompositionCell,
    CompositionResult,
    composition_rows,
    format_composition_report,
    run_composition,
)
from repro.analysis.attribution import (
    figure8_by_pass,
    pass_attribution,
    pipeline_report,
    report_reconciles,
)
from repro.analysis.experiments import (
    EXPERIMENT_KEYS,
    ExperimentResult,
    ExperimentSpec,
    experiment_spec,
    run_experiment,
    run_benchmark_suite,
)
from repro.analysis.frontier import (
    ContourPoint,
    ParetoPoint,
    crossover_map,
    pareto_front,
    pareto_surface,
    winner_map,
)
from repro.analysis.report import format_table
from repro.analysis.scaling import (
    Crossover,
    detect_crossovers,
    format_scaling_report,
    scaling_rows,
    speedup_curve,
)

__all__ = [
    "EXPERIMENT_KEYS",
    "CompositionCell",
    "CompositionResult",
    "ContourPoint",
    "Crossover",
    "composition_rows",
    "format_composition_report",
    "run_composition",
    "ParetoPoint",
    "crossover_map",
    "pareto_front",
    "pareto_surface",
    "winner_map",
    "ExperimentResult",
    "ExperimentSpec",
    "detect_crossovers",
    "experiment_spec",
    "figure8_by_pass",
    "format_scaling_report",
    "pass_attribution",
    "pipeline_report",
    "report_reconciles",
    "run_experiment",
    "run_benchmark_suite",
    "format_table",
    "scaling_rows",
    "speedup_curve",
]
