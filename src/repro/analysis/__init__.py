"""The experiment harness: the paper's evaluation section as code.

:mod:`repro.analysis.experiments` defines the experiment keys of the
paper's Figure 9 and runs benchmark x experiment grids (submitted
through the :mod:`repro.engine` job engine);
:mod:`repro.analysis.figures` regenerates each figure/table's rows;
:mod:`repro.analysis.report` renders them as aligned text tables.
"""

from repro.analysis.experiments import (
    EXPERIMENT_KEYS,
    ExperimentResult,
    ExperimentSpec,
    experiment_spec,
    run_experiment,
    run_benchmark_suite,
)
from repro.analysis.report import format_table

__all__ = [
    "EXPERIMENT_KEYS",
    "ExperimentResult",
    "ExperimentSpec",
    "experiment_spec",
    "run_experiment",
    "run_benchmark_suite",
    "format_table",
]
