"""The optimization-composition study: do rr, cc, and pl *compose*?

The paper reports cumulative results — ``rr``, then ``rr+cc``, then
``rr+cc+pl`` — and never asks whether the combined win is what the
individual wins would predict.  This module quantifies exactly that.
For one program on one machine variant it measures five points:

===========  ================================================
key          optimization configuration
===========  ================================================
baseline     message vectorization only
rr           redundancy removal alone
cc_only      combining alone
pl_only      pipelining alone
pl           all three combined (rr + cc + pl)
===========  ================================================

and derives, with ``T(k)`` the measured execution time under key ``k``:

* per-optimization speedups ``s_rr = T(baseline)/T(rr)``,
  ``s_cc = T(baseline)/T(cc_only)``, ``s_pl = T(baseline)/T(pl_only)``;
* the multiplicative prediction ``predicted = s_rr * s_cc * s_pl``;
* the measured combined speedup ``measured = T(baseline)/T(pl)``;
* the **composition factor** ``factor = measured / predicted`` —
  1 when the optimizations compose multiplicatively, below 1 when they
  overlap (two optimizations removing the *same* cost, the common
  case: rr deletes a transfer that cc would have merged), above 1 when
  they enable each other (combining succeeds only after redundancy
  removal shrinks a block's transfer set).

The single-optimization measurements are *independent* by construction.
Deriving per-optimization ratios from the paper's cumulative chain
instead (``T(rr)/T(cc)`` etc.) telescopes: their product is identically
the combined ratio, so every factor would be exactly 1 — a circular
calculation, not a result.  ``cc_only``/``pl_only`` exist as experiment
keys (:data:`repro.experiments_registry.COMPOSITION_KEYS`) precisely to
break that circle.

The whole grid — every program under every key on every machine
variant — is submitted as one :class:`~repro.engine.ExperimentEngine`
run, so cells are content-cached and dispatched exactly like any study,
and generated programs (``gen_<seed>``) ride through the registry like
the bundled benchmarks.  Results emit as a ``%.6g`` CSV artifact and a
full-precision versioned JSON document, mirroring
:mod:`repro.analysis.scaling`.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.engine.core import ConfigOverride, ExperimentEngine, build_matrix
from repro.engine.dispatch import Dispatcher
from repro.engine.jobs import MachineSpec
from repro.errors import ExperimentError
from repro.experiments_registry import COMPOSITION_KEYS
from repro.machine.variants import OverrideValue, describe_overrides, variant_id
from repro.obs import core as obs
from repro.programs import BENCHMARKS, KERNELS
from repro.runtime import ExecutionMode

__all__ = [
    "COMPOSITION_SCHEMA",
    "CompositionCell",
    "CompositionResult",
    "DEFAULT_VARIANTS",
    "composition_rows",
    "format_composition_report",
    "run_composition",
    "write_csv",
    "write_json",
]

#: Schema version of the emitted CSV/JSON composition documents.
COMPOSITION_SCHEMA = 1

#: Default machine-variant grid: the calibrated base machine plus a
#: high-latency variant (10x the T3D's 12us wire).  Latency is the
#: parameter the three optimizations all attack — rr sends fewer
#: messages, cc fewer-but-larger, pl hides the wire — so it is where
#: composition (shared savings) is most visible.
DEFAULT_VARIANTS: Tuple[Mapping[str, OverrideValue], ...] = (
    {},
    {"net.latency": 1.2e-4},
)


@dataclass(frozen=True)
class CompositionCell:
    """One program on one machine variant: times, speedups, factor."""

    benchmark: str
    machine: str
    nprocs: int
    variant: str
    #: human-readable override list (``"base"`` for the unswept machine)
    variant_desc: str
    #: execution time per composition key
    times: Dict[str, float]
    #: speedup of each optimization alone over baseline
    speedup_rr: float
    speedup_cc: float
    speedup_pl: float
    #: multiplicative prediction s_rr * s_cc * s_pl
    predicted: float
    #: measured combined speedup T(baseline) / T(pl)
    measured: float
    #: measured / predicted
    factor: float


@dataclass
class CompositionResult:
    """The composition study's full grid plus its provenance."""

    cells: List[CompositionCell]
    benchmarks: Tuple[str, ...]
    machine: str
    nprocs: int
    variants: Tuple[Tuple[Tuple[str, OverrideValue], ...], ...]
    outcomes: List = None  # JobOutcomes, for telemetry

    def cell(self, benchmark: str, variant: str) -> CompositionCell:
        for c in self.cells:
            if c.benchmark == benchmark and c.variant == variant:
                return c
        raise ExperimentError(
            f"no composition cell for {benchmark!r} on variant {variant!r}"
        )

    @property
    def factors(self) -> Dict[str, Dict[str, float]]:
        """``benchmark -> variant -> factor``."""
        out: Dict[str, Dict[str, float]] = {}
        for c in self.cells:
            out.setdefault(c.benchmark, {})[c.variant] = c.factor
        return out


def _coerce_variants(
    variants: Optional[Sequence[Mapping[str, OverrideValue]]],
) -> Tuple[Dict[str, OverrideValue], ...]:
    if variants is None:
        variants = DEFAULT_VARIANTS
    coerced = tuple(dict(v) for v in variants)
    if not coerced:
        raise ExperimentError("composition needs at least one machine variant")
    return coerced


def run_composition(
    *,
    benchmarks: Union[str, Iterable[str], None] = None,
    machine: Union[MachineSpec, str, None] = None,
    nprocs: Optional[int] = None,
    library: Optional[str] = None,
    variants: Optional[Sequence[Mapping[str, OverrideValue]]] = None,
    config_overrides: Optional[Mapping[str, ConfigOverride]] = None,
    fast: Optional[bool] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
    cache_dir: Union[str, Path, None] = None,
    cache_backend: Optional[str] = None,
    cache_url: Optional[str] = None,
    dispatcher: Union[Dispatcher, str, None] = None,
    telemetry: Union[str, Path, None] = None,
) -> CompositionResult:
    """Run the composition study over a benchmark x machine-variant grid.

    Parameters mirror :func:`repro.run_study`, plus ``variants``: a
    sequence of machine parameter override mappings (see
    :mod:`repro.machine.variants`), each defining one grid column;
    defaults to :data:`DEFAULT_VARIANTS` (base + high latency).
    ``benchmarks`` defaults to the paper's four plus the classic
    kernels; any registry name works, including ``gen_<seed>``.

    Every (program, key, variant) cell runs TIMING mode through one
    engine run — cached, dispatchable, bit-identical across dispatchers
    like any study.
    """
    if benchmarks is None:
        benchmarks = BENCHMARKS + KERNELS
    elif isinstance(benchmarks, str):
        benchmarks = (benchmarks,)
    benchmarks = tuple(benchmarks)
    if not benchmarks:
        raise ExperimentError("composition needs at least one benchmark")
    variant_sets = _coerce_variants(variants)

    base_spec = MachineSpec.coerce(
        machine, nprocs=64 if nprocs is None else nprocs, library=library
    )

    with obs.span(
        "composition:run",
        benchmarks=len(benchmarks),
        variants=len(variant_sets),
    ):
        matrix = []
        spans: List[Tuple[str, MachineSpec]] = []
        for overrides in variant_sets:
            # variant overrides stack on any overrides pinned on the base
            # spec (the CLI's --set) instead of replacing them
            merged = dict(base_spec.overrides)
            merged.update(overrides)
            spec = MachineSpec.coerce(base_spec, overrides=merged)
            if any(vid == spec.variant for vid, _ in spans):
                raise ExperimentError(
                    "duplicate machine variant in composition grid: "
                    f"{describe_overrides(merged)!r} (after merging base "
                    "overrides) appears more than once"
                )
            spans.append((spec.variant, spec))
            matrix.extend(
                build_matrix(
                    benchmarks,
                    COMPOSITION_KEYS,
                    machine=spec,
                    config_overrides=config_overrides,
                    mode=ExecutionMode.TIMING,
                    fast=fast,
                )
            )

        engine = ExperimentEngine(
            jobs=jobs,
            cache=cache,
            cache_dir=cache_dir,
            cache_backend=cache_backend,
            cache_url=cache_url,
            dispatcher=dispatcher,
        )
        outcomes = engine.run(matrix)

    # (variant, benchmark) -> key -> time
    times: Dict[Tuple[str, str], Dict[str, float]] = {}
    for outcome in outcomes:
        job = outcome.job
        cell = times.setdefault((job.machine.variant, job.benchmark), {})
        cell[job.experiment] = outcome.result.execution_time

    cells: List[CompositionCell] = []
    for vid, spec in spans:
        desc = describe_overrides(dict(spec.overrides))
        for bench in benchmarks:
            t = times[(vid, bench)]
            cells.append(_derive_cell(bench, spec, vid, desc, t))

    result = CompositionResult(
        cells=cells,
        benchmarks=benchmarks,
        machine=base_spec.name,
        nprocs=base_spec.nprocs,
        variants=tuple(spec.overrides for _, spec in spans),
        outcomes=outcomes,
    )
    if telemetry is not None:
        from repro.engine.cache import RECORD_SCHEMA

        doc = {
            "schema": RECORD_SCHEMA,
            "records": [o.record for o in outcomes],
        }
        Path(telemetry).write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return result


def _derive_cell(
    benchmark: str,
    spec: MachineSpec,
    variant: str,
    variant_desc: str,
    t: Mapping[str, float],
) -> CompositionCell:
    missing = [k for k in COMPOSITION_KEYS if k not in t]
    if missing:
        raise ExperimentError(
            f"composition cell {benchmark!r}/{variant} is missing keys: "
            f"{', '.join(missing)}"
        )
    base = t["baseline"]
    if base <= 0:
        raise ExperimentError(
            f"composition cell {benchmark!r}/{variant} has non-positive "
            f"baseline time {base!r}"
        )
    s_rr = base / t["rr"]
    s_cc = base / t["cc_only"]
    s_pl = base / t["pl_only"]
    predicted = s_rr * s_cc * s_pl
    measured = base / t["pl"]
    return CompositionCell(
        benchmark=benchmark,
        machine=spec.name,
        nprocs=spec.nprocs,
        variant=variant,
        variant_desc=variant_desc,
        times={k: t[k] for k in COMPOSITION_KEYS},
        speedup_rr=s_rr,
        speedup_cc=s_cc,
        speedup_pl=s_pl,
        predicted=predicted,
        measured=measured,
        factor=measured / predicted,
    )


# ---------------------------------------------------------------------------
# presentation: table rows, text report, CSV/JSON artifacts
# ---------------------------------------------------------------------------


def composition_rows(
    result: CompositionResult,
) -> Tuple[List[str], List[List]]:
    """One row per (program, variant) cell, for ``format_table``/CSV."""
    headers = (
        ["benchmark", "machine", "nprocs", "variant", "overrides"]
        + [f"t_{k}" for k in COMPOSITION_KEYS]
        + ["s_rr", "s_cc", "s_pl", "predicted", "measured", "factor"]
    )
    rows = [
        [
            c.benchmark,
            c.machine,
            c.nprocs,
            c.variant,
            c.variant_desc,
            *[c.times[k] for k in COMPOSITION_KEYS],
            c.speedup_rr,
            c.speedup_cc,
            c.speedup_pl,
            c.predicted,
            c.measured,
            c.factor,
        ]
        for c in result.cells
    ]
    return headers, rows


def format_composition_report(result: CompositionResult) -> str:
    """The CLI's text report: the per-cell table plus a factor summary."""
    headers, rows = composition_rows(result)
    factors = [c.factor for c in result.cells]
    lo, hi = min(factors), max(factors)
    mean = sum(factors) / len(factors)
    parts = [
        format_table(
            headers,
            rows,
            float_fmt=".6g",
            title=(
                f"Composition study — {len(result.benchmarks)} programs x "
                f"{len(result.variants)} variants on {result.machine}"
                f"({result.nprocs})"
            ),
        ),
        (
            f"Composition factor (measured/predicted): "
            f"min {lo:.6g}, mean {mean:.6g}, max {hi:.6g} — "
            "1 = perfectly multiplicative, <1 = overlapping savings, "
            ">1 = enabling"
        ),
    ]
    return "\n\n".join(parts)


def _format_cell(value):
    """Floats render as ``%.6g`` so CSV artifacts diff cleanly across
    platforms; ints and strings pass through (full precision lives in
    :func:`write_json`)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return value


def write_csv(path: Union[str, Path], result: CompositionResult) -> Path:
    """The per-cell composition table as CSV (header row + one row per
    cell, floats formatted ``%.6g``)."""
    path = Path(path)
    headers, rows = composition_rows(result)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow([_format_cell(cell) for cell in row])
    return path


def write_json(path: Union[str, Path], result: CompositionResult) -> Path:
    """The full composition document: grid, per-cell records (full
    precision), and the factor summary."""
    factors = [c.factor for c in result.cells]
    doc = {
        "schema": COMPOSITION_SCHEMA,
        "machine": result.machine,
        "nprocs": result.nprocs,
        "benchmarks": list(result.benchmarks),
        "keys": list(COMPOSITION_KEYS),
        "variants": [
            {
                "variant": variant_id(dict(v)),
                "overrides": {path_: value for path_, value in v},
            }
            for v in result.variants
        ],
        "cells": [asdict(c) for c in result.cells],
        "summary": {
            "factor_min": min(factors),
            "factor_mean": sum(factors) / len(factors),
            "factor_max": max(factors),
        },
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path
