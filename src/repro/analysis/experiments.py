"""Experiment drivers over the key registry (the paper's Figure 9).

The experiment-key table itself lives in
:mod:`repro.experiments_registry` — a module deliberately below both
this package and :mod:`repro.engine`, so the engine can fingerprint
resolved pipelines without importing the analysis layer.  Every
historical name (``EXPERIMENT_KEYS``, ``ExperimentSpec``,
``ExperimentResult``, ``experiment_spec``) is re-exported here
unchanged.

The grid drivers (:func:`run_benchmark_suite`) submit through
:mod:`repro.engine` — the parallel, content-addressed engine — rather
than looping inline; :func:`repro.engine.run_study` is the richer
facade.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments_registry import (
    EXPERIMENT_KEYS,
    ExperimentResult,
    ExperimentSpec,
    experiment_spec,
)
from repro.machine import t3d
from repro.machine.params import Machine
from repro.programs import build_benchmark
from repro.runtime import ExecutionMode, simulate

__all__ = [
    "EXPERIMENT_KEYS",
    "ExperimentResult",
    "ExperimentSpec",
    "experiment_spec",
    "run_experiment",
    "run_benchmark_suite",
]


def run_experiment(
    benchmark: str,
    key: str,
    nprocs: int = 64,
    config: Optional[Dict[str, float]] = None,
    mode: ExecutionMode = ExecutionMode.TIMING,
    machine: Optional[Machine] = None,
) -> ExperimentResult:
    """Compile and run one benchmark under one experiment key.

    ``machine`` overrides the default T3D (the paper's whole-program
    platform); when given, its library takes precedence over the key's.
    """
    spec = experiment_spec(key)
    if machine is None:
        machine = t3d(nprocs, spec.library)
    program = build_benchmark(benchmark, config=config, opt=spec.opt)
    result = simulate(program, machine, mode)
    return ExperimentResult(
        benchmark=benchmark,
        experiment=key,
        library=machine.library,
        static_count=result.static_comm_count,
        dynamic_count=result.dynamic_comm_count,
        execution_time=result.time,
    )


def run_benchmark_suite(
    benchmarks: Iterable[str],
    keys: Iterable[str] = EXPERIMENT_KEYS,
    nprocs: int = 64,
    config_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    mode: ExecutionMode = ExecutionMode.TIMING,
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir=None,
) -> Dict[str, List[ExperimentResult]]:
    """Run a grid of benchmarks x experiments (the whole-program study).

    Returns benchmark name -> results in key order.  ``config_overrides``
    maps benchmark name -> config dict (tests use the small configs).

    The grid is submitted through :class:`repro.engine.ExperimentEngine`:
    ``jobs`` fans it out over worker processes, ``cache=True`` makes
    re-runs incremental through the on-disk result cache (off by default
    here for drop-in compatibility; the richer
    :func:`repro.engine.run_study` facade caches by default and also
    returns telemetry).
    """
    from repro.engine import run_study

    study = run_study(
        benchmarks=tuple(benchmarks),
        keys=tuple(keys),
        nprocs=nprocs,
        config_overrides=config_overrides,
        mode=mode,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
    )
    return dict(study.results)
