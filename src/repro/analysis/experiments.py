"""Experiment keys and drivers (the paper's Figure 9).

==================  =============================================  ========
key                 description                                    library
==================  =============================================  ========
baseline            message vectorization                          pvm
rr                  baseline + redundant communication removal     pvm
cc                  rr + communication combination                 pvm
pl                  cc + communication pipelining                  pvm
pl_shmem            pl using shmem_put                             shmem
pl_maxlat           pl with shmem, combining for max latency       shmem
==================  =============================================  ========

The paper's experiments are *cumulative* — each key adds one
optimization — and the library is an orthogonal axis that the last two
keys flip to SHMEM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.comm import OptimizationConfig
from repro.errors import ExperimentError
from repro.machine import t3d
from repro.machine.params import Machine
from repro.programs import build_benchmark
from repro.runtime import ExecutionMode, simulate

#: Experiment keys in the paper's presentation order.
EXPERIMENT_KEYS: Tuple[str, ...] = (
    "baseline",
    "rr",
    "cc",
    "pl",
    "pl_shmem",
    "pl_maxlat",
)

_SPECS: Dict[str, Tuple[OptimizationConfig, str, str]] = {
    "baseline": (
        OptimizationConfig.baseline(),
        "pvm",
        "message vectorization",
    ),
    "rr": (
        OptimizationConfig.rr_only(),
        "pvm",
        "baseline with removing redundant communication",
    ),
    "cc": (
        OptimizationConfig.rr_cc(),
        "pvm",
        "rr with combining communication",
    ),
    "pl": (OptimizationConfig.full(), "pvm", "cc with pipelining"),
    "pl_shmem": (
        OptimizationConfig.full(),
        "shmem",
        "pl using shmem_put",
    ),
    "pl_maxlat": (
        OptimizationConfig.full_max_latency(),
        "shmem",
        "pl with shmem, combining for maximum latency hiding",
    ),
}


def experiment_spec(key: str) -> Tuple[OptimizationConfig, str, str]:
    """(optimization config, library, description) for an experiment key."""
    try:
        return _SPECS[key]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {key!r} (valid: {', '.join(EXPERIMENT_KEYS)})"
        ) from None


@dataclass(frozen=True)
class ExperimentResult:
    """One cell of a Table 1-4 style table."""

    benchmark: str
    experiment: str
    library: str
    static_count: int
    dynamic_count: int
    execution_time: float

    def scaled_to(self, baseline: "ExperimentResult") -> float:
        """Execution time relative to a baseline run (the paper's plots)."""
        return self.execution_time / baseline.execution_time


def run_experiment(
    benchmark: str,
    key: str,
    nprocs: int = 64,
    config: Optional[Dict[str, float]] = None,
    mode: ExecutionMode = ExecutionMode.TIMING,
    machine: Optional[Machine] = None,
) -> ExperimentResult:
    """Compile and run one benchmark under one experiment key.

    ``machine`` overrides the default T3D (the paper's whole-program
    platform); when given, its library takes precedence over the key's.
    """
    opt, library, _ = experiment_spec(key)
    if machine is None:
        machine = t3d(nprocs, library)
    program = build_benchmark(benchmark, config=config, opt=opt)
    result = simulate(program, machine, mode)
    return ExperimentResult(
        benchmark=benchmark,
        experiment=key,
        library=machine.library,
        static_count=result.static_comm_count,
        dynamic_count=result.dynamic_comm_count,
        execution_time=result.time,
    )


def run_benchmark_suite(
    benchmarks: Iterable[str],
    keys: Iterable[str] = EXPERIMENT_KEYS,
    nprocs: int = 64,
    config_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    mode: ExecutionMode = ExecutionMode.TIMING,
) -> Dict[str, List[ExperimentResult]]:
    """Run a grid of benchmarks x experiments (the whole-program study).

    Returns benchmark name -> results in key order.  ``config_overrides``
    maps benchmark name -> config dict (tests use the small configs).
    """
    out: Dict[str, List[ExperimentResult]] = {}
    for bench in benchmarks:
        config = (config_overrides or {}).get(bench)
        out[bench] = [
            run_experiment(bench, key, nprocs=nprocs, config=config, mode=mode)
            for key in keys
        ]
    return out
