"""Experiment keys and drivers (the paper's Figure 9).

==================  =============================================  ========
key                 description                                    library
==================  =============================================  ========
baseline            message vectorization                          pvm
rr                  baseline + redundant communication removal     pvm
cc                  rr + communication combination                 pvm
pl                  cc + communication pipelining                  pvm
pl_shmem            pl using shmem_put                             shmem
pl_maxlat           pl with shmem, combining for max latency       shmem
==================  =============================================  ========

The paper's experiments are *cumulative* — each key adds one
optimization — and the library is an orthogonal axis that the last two
keys flip to SHMEM.

An experiment key resolves to an :class:`ExperimentSpec` (key, opt,
library, description).  ``experiment_spec`` historically returned a bare
``(opt, library, description)`` tuple; the spec still unpacks that way
through a deprecation shim, but new code should use the named fields.

The grid drivers (:func:`run_benchmark_suite`) submit through
:mod:`repro.engine` — the parallel, content-addressed engine — rather
than looping inline; :func:`repro.engine.run_study` is the richer
facade.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.comm import OptimizationConfig
from repro.errors import ExperimentError
from repro.machine import t3d
from repro.machine.params import Machine
from repro.programs import build_benchmark
from repro.runtime import ExecutionMode, simulate

#: Experiment keys in the paper's presentation order.
EXPERIMENT_KEYS: Tuple[str, ...] = (
    "baseline",
    "rr",
    "cc",
    "pl",
    "pl_shmem",
    "pl_maxlat",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One of the paper's experiment configurations, by name.

    Attributes
    ----------
    key:
        The experiment key (``"baseline"`` ... ``"pl_maxlat"``).
    opt:
        The resolved :class:`~repro.comm.OptimizationConfig`.
    library:
        The communication library the paper pairs with the key (``pvm``
        for the message-passing keys, ``shmem`` for the last two).
    description:
        The paper's cumulative description of the configuration.
    """

    key: str
    opt: OptimizationConfig
    library: str
    description: str

    # -- deprecation shim: the pre-engine API returned a bare
    # (opt, library, description) 3-tuple; keep unpacking working.
    def __iter__(self) -> Iterator:
        warnings.warn(
            "unpacking an ExperimentSpec as an (opt, library, description) "
            "tuple is deprecated; use the .opt/.library/.description fields "
            "(and .key) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return iter((self.opt, self.library, self.description))

    def __len__(self) -> int:
        return 3

    def __getitem__(self, index):
        warnings.warn(
            "indexing an ExperimentSpec like a tuple is deprecated; use "
            "the .opt/.library/.description fields instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return (self.opt, self.library, self.description)[index]


_SPECS: Dict[str, ExperimentSpec] = {
    spec.key: spec
    for spec in (
        ExperimentSpec(
            "baseline",
            OptimizationConfig.baseline(),
            "pvm",
            "message vectorization",
        ),
        ExperimentSpec(
            "rr",
            OptimizationConfig.rr_only(),
            "pvm",
            "baseline with removing redundant communication",
        ),
        ExperimentSpec(
            "cc",
            OptimizationConfig.rr_cc(),
            "pvm",
            "rr with combining communication",
        ),
        ExperimentSpec(
            "pl",
            OptimizationConfig.full(),
            "pvm",
            "cc with pipelining",
        ),
        ExperimentSpec(
            "pl_shmem",
            OptimizationConfig.full(),
            "shmem",
            "pl using shmem_put",
        ),
        ExperimentSpec(
            "pl_maxlat",
            OptimizationConfig.full_max_latency(),
            "shmem",
            "pl with shmem, combining for maximum latency hiding",
        ),
    )
}


def experiment_spec(key: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` for an experiment key."""
    try:
        return _SPECS[key]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {key!r} (valid: {', '.join(EXPERIMENT_KEYS)})"
        ) from None


@dataclass(frozen=True)
class ExperimentResult:
    """One cell of a Table 1-4 style table."""

    benchmark: str
    experiment: str
    library: str
    static_count: int
    dynamic_count: int
    execution_time: float

    def scaled_to(self, baseline: "ExperimentResult") -> float:
        """Execution time relative to a baseline run (the paper's plots)."""
        return self.execution_time / baseline.execution_time


def run_experiment(
    benchmark: str,
    key: str,
    nprocs: int = 64,
    config: Optional[Dict[str, float]] = None,
    mode: ExecutionMode = ExecutionMode.TIMING,
    machine: Optional[Machine] = None,
) -> ExperimentResult:
    """Compile and run one benchmark under one experiment key.

    ``machine`` overrides the default T3D (the paper's whole-program
    platform); when given, its library takes precedence over the key's.
    """
    spec = experiment_spec(key)
    if machine is None:
        machine = t3d(nprocs, spec.library)
    program = build_benchmark(benchmark, config=config, opt=spec.opt)
    result = simulate(program, machine, mode)
    return ExperimentResult(
        benchmark=benchmark,
        experiment=key,
        library=machine.library,
        static_count=result.static_comm_count,
        dynamic_count=result.dynamic_comm_count,
        execution_time=result.time,
    )


def run_benchmark_suite(
    benchmarks: Iterable[str],
    keys: Iterable[str] = EXPERIMENT_KEYS,
    nprocs: int = 64,
    config_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    mode: ExecutionMode = ExecutionMode.TIMING,
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir=None,
) -> Dict[str, List[ExperimentResult]]:
    """Run a grid of benchmarks x experiments (the whole-program study).

    Returns benchmark name -> results in key order.  ``config_overrides``
    maps benchmark name -> config dict (tests use the small configs).

    The grid is submitted through :class:`repro.engine.ExperimentEngine`:
    ``jobs`` fans it out over worker processes, ``cache=True`` makes
    re-runs incremental through the on-disk result cache (off by default
    here for drop-in compatibility; the richer
    :func:`repro.engine.run_study` facade caches by default and also
    returns telemetry).
    """
    from repro.engine import run_study

    study = run_study(
        benchmarks=tuple(benchmarks),
        keys=tuple(keys),
        nprocs=nprocs,
        config_overrides=config_overrides,
        mode=mode,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
    )
    return dict(study.results)
