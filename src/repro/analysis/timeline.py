"""ASCII timeline rendering for traced simulations.

``simulate(..., options=SimOptions.timing(trace_rank=r))`` records
processor ``r``'s full event
timeline; this module renders it as a Gantt strip — the picture behind
the paper's pipelining argument: with ``pl`` off, sends sit right next
to the waits they cause; with ``pl`` on, computation fills the gap and
the waits shrink.

Example::

    result = simulate(program, t3d(16), options=SimOptions.timing(trace_rank=5))
    print(render_timeline(result.trace, width=100))
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.runtime.timing import TraceEvent

#: Gantt glyph per event kind.
GLYPHS: Dict[str, str] = {
    "compute": "#",
    "send": "s",
    "recv": "r",
    "wait": ".",
    "synch": "y",
    "reduce": "R",
}


def render_timeline(
    trace: Iterable[TraceEvent],
    width: int = 80,
    start: float = 0.0,
    end: Optional[float] = None,
) -> str:
    """Render a trace as one Gantt strip plus a legend.

    Each of the ``width`` character cells covers an equal slice of
    ``[start, end]``; the glyph shown is the kind occupying most of the
    cell.  Empty cells (clock gaps from unrecorded scalar statements)
    render as spaces.
    """
    events = [e for e in trace]
    if not events:
        return "(empty trace)"
    if end is None:
        end = max(e.end for e in events)
    span = end - start
    if span <= 0:
        return "(empty window)"
    cell = span / width

    occupancy: List[Dict[str, float]] = [defaultdict(float) for _ in range(width)]
    for event in events:
        lo = max(event.start, start)
        hi = min(event.end, end)
        if hi <= lo:
            continue
        first = int((lo - start) / cell)
        last = min(int((hi - start) / cell), width - 1)
        for i in range(first, last + 1):
            cell_lo = start + i * cell
            cell_hi = cell_lo + cell
            overlap = min(hi, cell_hi) - max(lo, cell_lo)
            if overlap > 0:
                occupancy[i][event.kind] += overlap

    strip = []
    for cells in occupancy:
        if not cells:
            strip.append(" ")
        else:
            kind = max(cells, key=cells.get)
            strip.append(GLYPHS.get(kind, "?"))
    scale = f"{start * 1e6:.1f}us".ljust(width // 2) + f"{end * 1e6:.1f}us".rjust(
        width - width // 2
    )
    legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items())
    return "|" + "".join(strip) + "|\n " + scale + "\n " + legend


def summarize(trace: Iterable[TraceEvent]) -> List[Tuple[str, float, int]]:
    """Per-kind (total seconds, event count), sorted by time descending."""
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for event in trace:
        totals[event.kind] += event.duration
        counts[event.kind] += 1
    return sorted(
        ((k, totals[k], counts[k]) for k in totals),
        key=lambda row: row[1],
        reverse=True,
    )
