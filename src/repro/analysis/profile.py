"""Time-breakdown profiling: where do the model seconds go?

The timing engine attributes every clock advance to one of three
buckets — local computation, communication software (per-call costs),
and waiting (stalls on arrivals, readiness flags, collectives) — and the
three sum exactly to each rank's clock.  This module reports the
breakdown of the *critical* (slowest) processor, which is what the
execution time is made of.

This is the analysis the paper performs verbally ("a large amount of
time is spent in two small loops...", "limited space for exposing the
communication latency") made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.runtime.executor import RunResult


@dataclass(frozen=True)
class TimeBreakdown:
    """Critical-processor time split for one run."""

    total: float
    compute: float
    comm_sw: float
    wait: float

    @property
    def comm_fraction(self) -> float:
        """Share of the critical path not spent computing."""
        if self.total == 0:
            return 0.0
        return (self.comm_sw + self.wait) / self.total

    def as_row(self) -> List[float]:
        return [
            self.total,
            self.compute / self.total if self.total else 0.0,
            self.comm_sw / self.total if self.total else 0.0,
            self.wait / self.total if self.total else 0.0,
        ]


def breakdown_of(result: RunResult, rank: Optional[int] = None) -> TimeBreakdown:
    """Time breakdown of a run's critical processor (or a given rank)."""
    inst = result.instrument
    if rank is None:
        rank = int(np.argmax(result.clocks))
    return TimeBreakdown(
        total=float(result.clocks[rank]),
        compute=float(inst.compute_time[rank]),
        comm_sw=float(inst.comm_sw_time[rank]),
        wait=float(inst.wait_time[rank]),
    )


def breakdown_table(results: Dict[str, RunResult]) -> tuple:
    """(headers, rows) for a label -> result mapping: critical-rank time
    and its compute/software/wait fractions."""
    headers = ["run", "time (s)", "compute", "comm sw", "wait"]
    rows = []
    for label, result in results.items():
        rows.append([label] + breakdown_of(result).as_row())
    return headers, rows
