"""Per-pass attribution: which pass earned how much of each reduction.

The paper's Figure 8 reports *end-to-end* static/dynamic count
reductions per experiment key.  With the optimizer refactored into an
instrumented pass pipeline, every engine telemetry record carries a
``pipeline`` report — per-pass transfers removed, merges performed,
hiding distance gained, pass wall time — so the reduction can be
attributed to the individual pass that produced it: a finer-grained
Figure 8.

Input is anything that yields engine telemetry records: a
:class:`~repro.engine.StudyResult` (its ``.telemetry``), a plain list of
record dicts, or a ``--telemetry`` JSON document's ``records`` list.
Records written by pre-pipeline engine versions (no ``pipeline`` field)
are skipped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.comm import PipelineReport

Rows = Tuple[List[str], List[List]]

RecordSource = Union[Iterable[Mapping], "object"]


def _records(source: RecordSource) -> List[Mapping]:
    """Telemetry records from a StudyResult, a record list, or a
    ``--telemetry`` document."""
    telemetry = getattr(source, "telemetry", None)
    if telemetry is not None:
        return list(telemetry)
    if isinstance(source, Mapping) and "records" in source:
        return list(source["records"])
    return list(source)


def pipeline_report(record: Mapping) -> Optional[PipelineReport]:
    """The record's :class:`~repro.comm.PipelineReport`, or None for
    records from engines that predate the pass pipeline."""
    data = record.get("pipeline")
    if not data:
        return None
    return PipelineReport.from_dict(data)


def report_reconciles(record: Mapping) -> bool:
    """True when the record's per-pass totals explain its static count:
    ``planned - removed - merged == final == result.static_count``."""
    report = pipeline_report(record)
    if report is None:
        return False
    return (
        report.reconciles()
        and report.final == record["result"]["static_count"]
    )


def pass_attribution(
    source: RecordSource,
    benchmarks: Optional[Sequence[str]] = None,
    experiments: Optional[Sequence[str]] = None,
) -> Rows:
    """Per-pass breakdown of every cell's static-count reduction.

    One row per ``(benchmark, experiment, pass)``: transfers the pass
    removed, messages it merged away, hiding distance it gained (or, for
    combining, traded away), its wall time, and its *share* of the
    cell's total static reduction (blank when the cell reduced
    nothing).  Rows keep telemetry order — benchmark-major, keys in
    Figure 9 order, passes in pipeline order.
    """
    headers = [
        "benchmark",
        "experiment",
        "pass",
        "removed",
        "merged",
        "distance",
        "wall (ms)",
        "share",
    ]
    rows: List[List] = []
    for record in _records(source):
        if benchmarks is not None and record["benchmark"] not in benchmarks:
            continue
        if experiments is not None and record["experiment"] not in experiments:
            continue
        report = pipeline_report(record)
        if report is None:
            continue
        reduction = report.planned - report.final
        for stats in report.passes:
            contributed = stats.removed + stats.merged
            share = (
                f"{contributed / reduction:.0%}" if reduction else ""
            )
            rows.append(
                [
                    record["benchmark"],
                    record["experiment"],
                    stats.name,
                    stats.removed,
                    stats.merged,
                    stats.distance_gained,
                    stats.wall_s * 1e3,
                    share,
                ]
            )
    return headers, rows


def figure8_by_pass(source: RecordSource) -> Rows:
    """The finer-grained Figure 8: for each benchmark, the fraction of
    the naive static count that each pass eliminates under the paper's
    full pipeline (the ``pl`` key), plus the surviving fraction.

    Where Figure 8 shows *that* ``cc`` reaches e.g. 0.3x baseline, this
    table shows *which pass* got it there.
    """
    headers = [
        "benchmark",
        "naive",
        "redundancy",
        "combining",
        "remaining",
    ]
    rows: List[List] = []
    for record in _records(source):
        if record["experiment"] != "pl":
            continue
        report = pipeline_report(record)
        if report is None or not report.planned:
            continue
        removed: Dict[str, int] = {
            s.name: s.removed + s.merged for s in report.passes
        }
        rows.append(
            [
                record["benchmark"],
                report.planned,
                removed.get("redundancy", 0) / report.planned,
                removed.get("combining", 0) / report.planned,
                report.final / report.planned,
            ]
        )
    return headers, rows
