"""Scaling analysis over sweep results: curves, crossovers, emission.

The paper's experiments are cumulative — each key adds one optimization
on top of the previous one — so the natural per-optimization signal at
a swept point is the *incremental* ratio ``time(key) / time(prev key)``
(``cc/rr`` prices combining alone, ``pl/cc`` pipelining alone, ...).
A ratio below 1 means the optimization still pays at that point; a
*crossover* is the axis value where the ratio crosses 1.0 — where
combining stops winning as the knee shrinks, or pipelining stops hiding
anything as the latency approaches zero.

All functions are pure consumers of a
:class:`~repro.sweep.SweepResult`; nothing here simulates.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.obs import core as obs
from repro.sweep.axes import AxisValue
from repro.sweep.core import SweepResult

__all__ = [
    "SCALING_SCHEMA",
    "Crossover",
    "detect_crossovers",
    "find_crossings",
    "format_scaling_report",
    "scaling_rows",
    "speedup_curve",
    "write_csv",
    "write_json",
]

#: Schema version of the emitted CSV/JSON scaling documents.
SCALING_SCHEMA = 1


@dataclass(frozen=True)
class Crossover:
    """One detected win/loss flip along one axis.

    The ratio ``time(experiment) / time(reference)`` crosses 1.0 between
    axis values ``x_low`` and ``x_high``; ``x_estimate`` linearly
    interpolates the crossing point.  ``group`` pins the other axes'
    coordinates (empty for a one-axis sweep).
    """

    benchmark: str
    experiment: str
    reference: str
    axis: str
    group: Tuple[Tuple[str, AxisValue], ...]
    x_low: AxisValue
    x_high: AxisValue
    x_estimate: float
    ratio_low: float
    ratio_high: float

    @property
    def direction(self) -> str:
        """``"win->loss"`` when the ratio rises through 1.0."""
        return "win->loss" if self.ratio_high > self.ratio_low else "loss->win"


def scaling_rows(sweep: SweepResult) -> Tuple[List[str], List[List]]:
    """One row per swept cell, ready for ``format_table``/CSV.

    Columns: the axis coordinates, then identity (benchmark /
    experiment / library / variant), the raw observables, and the two
    scaled views — ``vs_baseline`` (the paper's presentation, scaled to
    the first key at the same point) and ``vs_prev`` (the incremental
    ratio against the previous key, the crossover signal).
    """
    axis_names = [axis.name for axis in sweep.axes]
    headers = axis_names + [
        "benchmark",
        "experiment",
        "library",
        "variant",
        "static",
        "dynamic",
        "time",
        "vs_baseline",
        "vs_prev",
    ]
    rows: List[List] = []
    for point, block in sweep.iter_points():
        coords = [point.coord(name) for name in axis_names]
        by_bench: Dict[str, Dict[str, object]] = {}
        for outcome in block:
            by_bench.setdefault(outcome.job.benchmark, {})[
                outcome.job.experiment
            ] = outcome
        for bench in sweep.benchmarks:
            cells = by_bench.get(bench, {})
            base_time: Optional[float] = None
            prev_time: Optional[float] = None
            for key in sweep.keys:
                outcome = cells.get(key)
                if outcome is None:
                    continue
                res = outcome.result
                if base_time is None:
                    base_time = res.execution_time
                rows.append(
                    coords
                    + [
                        bench,
                        key,
                        res.library,
                        point.variant,
                        res.static_count,
                        res.dynamic_count,
                        res.execution_time,
                        res.execution_time / base_time if base_time else 1.0,
                        res.execution_time / prev_time
                        if prev_time
                        else 1.0,
                    ]
                )
                prev_time = res.execution_time
    return headers, rows


def speedup_curve(
    sweep: SweepResult,
    axis: str,
    benchmark: str,
    experiment: str,
    reference: Optional[str] = None,
) -> List[Tuple[Tuple[Tuple[str, AxisValue], ...], List[Tuple[AxisValue, float]]]]:
    """Ratio-vs-axis curves for one (benchmark, experiment) pair.

    Returns one ``(group, [(x, ratio), ...])`` entry per combination of
    the *other* axes' values, with points ordered by ``x``.  ``ratio``
    is ``time(experiment) / time(reference)``; ``reference`` defaults to
    the key immediately before ``experiment`` in the sweep's key order
    (the incremental view).
    """
    keys = list(sweep.keys)
    if experiment not in keys:
        raise KeyError(f"experiment {experiment!r} not in sweep keys {keys}")
    if reference is None:
        idx = keys.index(experiment)
        reference = keys[idx - 1] if idx > 0 else keys[0]

    groups: Dict[Tuple, List[Tuple[AxisValue, float]]] = {}
    for point, block in sweep.iter_points():
        times: Dict[str, float] = {}
        for outcome in block:
            if outcome.job.benchmark == benchmark:
                times[outcome.job.experiment] = outcome.result.execution_time
        if experiment not in times or reference not in times:
            continue
        x = point.coord(axis)
        group = tuple(
            (name, value) for name, value in point.coords if name != axis
        )
        groups.setdefault(group, []).append(
            (x, times[experiment] / times[reference])
        )
    return [
        (group, sorted(pts, key=lambda p: p[0]))
        for group, pts in sorted(groups.items())
    ]


def find_crossings(
    points: Sequence[Tuple[AxisValue, float]], threshold: float = 1.0
) -> List[Tuple[AxisValue, AxisValue, float, float, float]]:
    """Sign changes of ``ratio - threshold`` along an ordered curve.

    Pure helper over an ordered ``[(x, ratio), ...]`` curve; returns
    ``(x_low, x_high, x_estimate, ratio_low, ratio_high)`` per crossing.
    Between adjacent straddling points ``x_estimate`` linearly
    interpolates, matching the historical formula bit-for-bit.

    Grid points sitting *exactly* on the threshold never terminate the
    scan: a run of ties flanked by opposite signs is one crossing whose
    bracket is the nearest off-threshold neighbours and whose
    ``x_estimate`` is the tie run's midpoint (a single tie estimates
    exactly that grid value).  Ties flanked by the same sign — the curve
    touching the threshold without passing through — report nothing, as
    do ties at either end of the curve.  Non-monotone curves simply
    yield one entry per sign change, in axis order.
    """
    out = []
    prev: Optional[Tuple[AxisValue, float, float]] = None
    ties: List[AxisValue] = []  # threshold-exact x's since ``prev``
    for x, r in points:
        d = r - threshold
        if d == 0:
            if prev is not None:
                ties.append(x)
            continue
        if prev is not None and (d < 0) != (prev[2] < 0):
            x0, r0, d0 = prev
            if ties:
                est = (float(ties[0]) + float(ties[-1])) / 2.0
            else:
                frac = d0 / (d0 - d)
                est = float(x0) + frac * (float(x) - float(x0))
            out.append((x0, x, est, r0, r))
        prev = (x, r, d)
        ties = []
    return out


def detect_crossovers(sweep: SweepResult) -> List[Crossover]:
    """Every win/loss flip of every incremental optimization, along
    every axis, in every benchmark and other-axis group."""
    crossovers: List[Crossover] = []
    keys = list(sweep.keys)
    for axis in sweep.axes:
        if len(axis.values) < 2:
            continue
        for bench in sweep.benchmarks:
            for prev, key in zip(keys, keys[1:]):
                for group, curve in speedup_curve(
                    sweep, axis.name, bench, key, reference=prev
                ):
                    for x0, x1, est, r0, r1 in find_crossings(curve):
                        crossovers.append(
                            Crossover(
                                benchmark=bench,
                                experiment=key,
                                reference=prev,
                                axis=axis.name,
                                group=group,
                                x_low=x0,
                                x_high=x1,
                                x_estimate=est,
                                ratio_low=r0,
                                ratio_high=r1,
                            )
                        )
    obs.add("sweep.crossovers", len(crossovers))
    return crossovers


def _crossover_rows(
    crossovers: Sequence[Crossover],
) -> Tuple[List[str], List[List]]:
    headers = [
        "benchmark",
        "experiment",
        "vs",
        "axis",
        "group",
        "direction",
        "x_low",
        "x_high",
        "x_estimate",
        "ratio_low",
        "ratio_high",
    ]
    rows = [
        [
            c.benchmark,
            c.experiment,
            c.reference,
            c.axis,
            ",".join(f"{n}={v:g}" for n, v in c.group) or "-",
            c.direction,
            c.x_low,
            c.x_high,
            c.x_estimate,
            c.ratio_low,
            c.ratio_high,
        ]
        for c in crossovers
    ]
    return headers, rows


def format_scaling_report(
    sweep: SweepResult, crossovers: Optional[Sequence[Crossover]] = None
) -> str:
    """The CLI's text report: the per-cell table plus the crossovers."""
    if crossovers is None:
        crossovers = detect_crossovers(sweep)
    headers, rows = scaling_rows(sweep)
    parts = [
        format_table(
            headers,
            rows,
            float_fmt=".6g",
            title=f"Scaling sweep — {sweep.cells} cells over "
            f"{len(sweep.points)} points",
        )
    ]
    if crossovers:
        ch, cr = _crossover_rows(crossovers)
        parts.append(
            format_table(
                ch,
                cr,
                float_fmt=".6g",
                title=f"Crossovers — {len(crossovers)} detected "
                "(incremental ratio crosses 1.0)",
            )
        )
    else:
        parts.append("Crossovers — none detected")
    return "\n\n".join(parts)


def _format_cell(value):
    """Floats render as ``%.6g`` so CSV artifacts diff cleanly across
    platforms; ints and strings pass through (full precision lives in
    :func:`write_json`)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return value


def write_csv(path: Union[str, Path], sweep: SweepResult) -> Path:
    """The per-cell scaling table as CSV (header row + one row per
    swept cell, floats formatted ``%.6g``)."""
    path = Path(path)
    headers, rows = scaling_rows(sweep)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow([_format_cell(cell) for cell in row])
    return path


def write_json(
    path: Union[str, Path],
    sweep: SweepResult,
    crossovers: Optional[Sequence[Crossover]] = None,
) -> Path:
    """The full scaling document: axes, per-cell rows, crossovers."""
    if crossovers is None:
        crossovers = detect_crossovers(sweep)
    headers, rows = scaling_rows(sweep)
    doc = {
        "schema": SCALING_SCHEMA,
        "axes": [
            {"name": a.name, "values": list(a.values)} for a in sweep.axes
        ],
        "benchmarks": list(sweep.benchmarks),
        "keys": list(sweep.keys),
        "points": [
            {
                "coords": dict(p.coords),
                "variant": p.variant,
                "nprocs": p.machine.nprocs,
            }
            for p in sweep.points
        ],
        "columns": headers,
        "rows": rows,
        "crossovers": [asdict(c) for c in crossovers],
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path
