"""``repro serve`` — an asyncio HTTP front-end over the experiment engine.

The server accepts study and sweep requests as JSON, runs them through
one shared :class:`~repro.engine.ExperimentEngine` configuration (cache
backend, dispatcher, worker count — all fixed at startup), and returns
the result summary plus per-cell results.  Two properties make it more
than a thin RPC wrapper:

* **in-flight dedup** — a study request is keyed by the content
  fingerprints of the jobs it expands to (a sweep by its canonical
  payload), so a second identical submission that arrives while the
  first is still running awaits the *same* execution instead of
  spawning new jobs (``serve.dedup`` counts these).  Once the first
  run finishes, identical re-submissions are served by the result
  cache instead — either way, no job runs twice.
* **batched cost-only work** — sweep requests go through
  :func:`repro.sweep.run_sweep` with its default auto-batching, so a
  cost-only TIMING sweep evaluates each ``benchmark x experiment``
  cell's variants in one :func:`repro.runtime.simulate_many` call.

Protocol (bodies JSON unless noted)::

    GET  /healthz            -> 200 {"ok": true}
    GET  /stats              -> 200 {"cache", "counters", "inflight",
                                     "uptime_s", "endpoints", "progress"}
    GET  /metrics            -> 200 Prometheus text exposition
    GET  /v1/progress        -> 200 {"studies": [progress summaries]}
    GET  /v1/progress/<key>  -> 200 chunked JSONL job-lifecycle stream
    POST /v1/study  <- run_study kwargs subset  -> 200 result summary
    POST /v1/sweep  <- run_sweep kwargs subset  -> 200 result summary

Counters: ``serve.requests``, ``serve.studies``, ``serve.sweeps``,
``serve.dedup``, ``serve.errors`` — streamed through :mod:`repro.obs`
like the rest of the stack (enable a sink in the serving process to
collect them; ``GET /stats`` reports the live registry either way).

**Progress streaming.**  Each accepted submission gets a progress key
(returned as ``"key"`` in the summary — the same fingerprint-derived
key the in-flight dedup uses) and runs under its own trace id
(:func:`repro.obs.core.bind_trace`), with a
:class:`~repro.obs.sinks.QueueSink` filtered to that trace feeding a
replayable per-run :class:`ProgressLog`.  ``GET /v1/progress/<key>``
streams the log as chunked JSONL — one object per line: a ``start``
event, one ``job`` event per completed cell (status ``done`` /
``cached`` / ``batched``), ``retry`` events, and a terminal ``done``
(or ``error``) event.  Late subscribers replay from the start; the
stream ends when the run does.  ``repro top URL`` renders it live.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
import uuid
from collections import OrderedDict
from functools import partial
from typing import AsyncIterator, Dict, List, Optional, Tuple, Union

from repro.engine.core import ExperimentEngine, build_matrix, run_study
from repro.errors import ReproError
from repro.obs import core as obs
from repro.obs.distributed import render_prometheus
from repro.obs.sinks import QueueSink
from repro.sweep import SweepAxis, run_sweep

__all__ = ["ProgressLog", "ReproServer", "ServeApp"]

#: how often a progress stream polls its log for new events (seconds)
_STREAM_POLL_S = 0.05
#: retained progress logs; finished logs are evicted oldest-first past this
_PROGRESS_CAP = 128

#: serializes the lazy one-time obs.configure() across worker threads
_RECORDER_SETUP = threading.Lock()

#: request-payload keys forwarded to :func:`repro.run_study`
_STUDY_KEYS = frozenset(
    {
        "benchmarks",
        "keys",
        "machine",
        "nprocs",
        "library",
        "config_overrides",
        "mode",
        "fast",
    }
)
#: request-payload keys forwarded to :func:`repro.sweep.run_sweep`
_SWEEP_KEYS = frozenset(
    {
        "axes",
        "benchmarks",
        "keys",
        "machine",
        "library",
        "overrides",
        "config_overrides",
        "mode",
        "fast",
        "batched",
    }
)


class ProgressLog:
    """The replayable job-lifecycle event log of one submission.

    Thread-safe: the engine work thread appends, asyncio stream
    handlers snapshot.  Events are plain dicts; the log never drops —
    a subscriber that connects after the run finished still replays
    every event from the start.
    """

    def __init__(self, key: str, kind: str, total: Optional[int] = None) -> None:
        self.key = key
        self.kind = kind
        self.total = total
        self.started = time.time()
        self._events: List[dict] = []
        self._done = False
        self._lock = threading.Lock()
        self.append({"event": "start", "kind": kind, "key": key, "cells": total})

    @property
    def done(self) -> bool:
        with self._lock:
            return self._done

    def append(self, event: dict) -> None:
        with self._lock:
            if not self._done:
                self._events.append(event)

    def finish(self, event: dict) -> None:
        with self._lock:
            if not self._done:
                self._events.append(event)
                self._done = True

    def snapshot(self, start: int = 0) -> Tuple[List[dict], bool]:
        """Events from index ``start`` on, plus the done flag — the
        polling contract the stream generator uses."""
        with self._lock:
            return self._events[start:], self._done

    def describe(self) -> dict:
        with self._lock:
            return {
                "key": self.key,
                "kind": self.kind,
                "cells": self.total,
                "events": len(self._events),
                "done": self._done,
                "started": self.started,
            }


class _ProgressAdapter:
    """The ``put()`` target a :class:`~repro.obs.sinks.QueueSink` feeds:
    translates ``engine.job`` / ``engine.job.retry`` obs events into
    progress-log entries (other events pass through unmatched)."""

    def __init__(self, log: ProgressLog) -> None:
        self.log = log

    def put(self, record: dict) -> None:
        name = record.get("name")
        if name == "engine.job":
            self.log.append(
                {"event": "job", "ts": time.time(), **(record.get("attrs") or {})}
            )
        elif name == "engine.job.retry":
            self.log.append(
                {"event": "retry", "ts": time.time(), **(record.get("attrs") or {})}
            )


class PlainTextResponse:
    """A non-JSON response body (``GET /metrics``)."""

    def __init__(
        self, text: str, content_type: str = "text/plain; version=0.0.4; charset=utf-8"
    ) -> None:
        self.text = text
        self.content_type = content_type


class StreamResponse:
    """A chunked response fed by an async generator of ``bytes``."""

    def __init__(
        self, chunks: AsyncIterator[bytes], content_type: str = "application/x-ndjson"
    ) -> None:
        self.chunks = chunks
        self.content_type = content_type


class ServeApp:
    """Routing + dedup + execution, independent of the socket layer.

    The engine configuration (worker count, cache backend/root/URL,
    dispatcher) is fixed per app; requests choose *what* to run, never
    *where* results go — that is what lets concurrent requests share
    one backend and dedup against each other.
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = None,
        cache: bool = True,
        cache_dir=None,
        cache_backend: Optional[str] = None,
        cache_url: Optional[str] = None,
        dispatcher=None,
    ) -> None:
        self.engine_kwargs = {
            "jobs": jobs,
            "cache": cache,
            "cache_dir": cache_dir,
            "cache_backend": cache_backend,
            "cache_url": cache_url,
            "dispatcher": dispatcher,
        }
        # probe the configuration eagerly so a bad backend/dispatcher
        # fails at startup, not on the first request
        self.cache_info = ExperimentEngine(**self.engine_kwargs).cache.describe()
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._progress: "OrderedDict[str, ProgressLog]" = OrderedDict()
        self._started = time.time()
        self._endpoints: Dict[str, int] = {}

    # -- request keys -------------------------------------------------

    def _study_key(self, payload: dict) -> str:
        """Key a study by the content fingerprints of its job matrix —
        two requests that expand to the same jobs dedup even when the
        payloads spell the machine differently."""
        key, _ = self._study_key_and_size(payload)
        return key

    def _study_key_and_size(self, payload: dict) -> Tuple[str, int]:
        jobs = _study_matrix(payload)
        digest = hashlib.sha256()
        for job in jobs:
            digest.update(job.fingerprint().encode())
            digest.update(b"\n")
        return "study:" + digest.hexdigest(), len(jobs)

    def _sweep_key(self, payload: dict) -> str:
        canon = json.dumps(payload, sort_keys=True, default=str)
        return "sweep:" + hashlib.sha256(canon.encode()).hexdigest()

    # -- execution ----------------------------------------------------

    def _run_study(self, payload: dict) -> dict:
        kwargs = {k: payload[k] for k in payload if k in _STUDY_KEYS}
        study = run_study(**kwargs, **self.engine_kwargs)
        obs.add("serve.studies")
        return _summary("study", study.outcomes, study.cache_info)

    def _run_sweep(self, payload: dict) -> dict:
        kwargs = {
            k: payload[k] for k in payload if k in _SWEEP_KEYS and k != "axes"
        }
        axes = [
            SweepAxis(str(a["name"]), tuple(a["values"]))
            for a in payload.get("axes") or ()
        ]
        sweep = run_sweep(axes=axes, **kwargs, **self.engine_kwargs)
        obs.add("serve.sweeps")
        summary = _summary("sweep", sweep.outcomes, sweep.cache_info)
        summary["points"] = len(sweep.points)
        return summary

    async def submit(self, kind: str, payload: dict) -> dict:
        """Run (or join) a request; identical in-flight submissions
        share one execution (and one progress log)."""
        total: Optional[int] = None
        if kind == "study":
            key, total = self._study_key_and_size(payload)
            work = self._run_study
        else:
            key, work = self._sweep_key(payload), self._run_sweep

        loop = asyncio.get_running_loop()
        task = self._inflight.get(key)
        deduped = task is not None
        if deduped:
            obs.add("serve.dedup")
        else:
            log = self._new_progress(key, kind, total)
            task = loop.run_in_executor(
                None, partial(self._run_logged, work, payload, log)
            )
            task.add_done_callback(partial(self._settle, key))
            self._inflight[key] = task
        result = await asyncio.shield(task)
        return dict(result, deduped=deduped, key=key)

    def _run_logged(self, work, payload: dict, log: ProgressLog) -> dict:
        """Execute one submission on a worker thread under its own trace
        id, with a QueueSink (filtered to that trace) feeding the
        progress log — concurrent runs in one serving process never
        cross-talk their job events."""
        run_trace = uuid.uuid4().hex
        sink = QueueSink(
            _ProgressAdapter(log), types=("event",), trace=run_trace
        )
        with _RECORDER_SETUP:
            # two submissions racing this check would each configure()
            # a fresh recorder, orphaning the loser's sink — serialize
            # so exactly one recorder serves the whole process
            if not obs.enabled():
                # progress streaming needs a live recorder; an empty
                # one is the minimum (the CLI installs a MemorySink)
                obs.configure()
            recorder = obs.current()
        recorder.add_sink(sink)
        try:
            with obs.bind_trace(run_trace):
                result = work(payload)
        except BaseException as exc:
            log.finish({"event": "error", "ts": time.time(), "error": str(exc)})
            raise
        else:
            log.finish(
                {
                    "event": "done",
                    "ts": time.time(),
                    "cells": result.get("cells"),
                    "executed": result.get("executed"),
                    "cache_hits": result.get("cache_hits"),
                }
            )
            return result
        finally:
            # atomic w.r.t. emits: a bare list.remove here can make a
            # concurrent run's emit iteration skip its own sink
            recorder.remove_sink(sink)

    def _settle(self, key: str, task: "asyncio.Future") -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            task.exception()  # retrieved by every awaiter; silence the loop

    # -- progress -----------------------------------------------------

    def _new_progress(self, key: str, kind: str, total: Optional[int]) -> ProgressLog:
        log = self._progress.get(key)
        if log is not None and not log.done:
            return log  # resubmission racing _settle; keep the live log
        log = ProgressLog(key, kind, total)
        self._progress[key] = log
        self._progress.move_to_end(key)
        while len(self._progress) > _PROGRESS_CAP:
            stale = next(
                (k for k, v in self._progress.items() if v.done), None
            )
            if stale is None:
                break  # never evict an in-flight log
            del self._progress[stale]
        return log

    async def _stream_progress(self, log: ProgressLog) -> AsyncIterator[bytes]:
        """Replay the log from the start, then follow it (poll) until
        the run finishes — chunked JSONL, one event per line."""
        index = 0
        while True:
            events, done = log.snapshot(index)
            index += len(events)
            for event in events:
                yield (json.dumps(event, sort_keys=True) + "\n").encode()
            if not events:
                if done:
                    return
                await asyncio.sleep(_STREAM_POLL_S)

    def _metrics_text(self) -> str:
        recorder = obs.current()
        snap = (
            recorder.metrics.snapshot()
            if recorder is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        lines = [
            "# TYPE serve_uptime_seconds gauge",
            f"serve_uptime_seconds {time.time() - self._started:.3f}",
        ]
        if self._endpoints:
            lines.append("# TYPE serve_endpoint_requests_total counter")
            for endpoint, count in sorted(self._endpoints.items()):
                lines.append(
                    f'serve_endpoint_requests_total{{endpoint="{endpoint}"}} {count}'
                )
        return render_prometheus(snap) + "\n".join(lines) + "\n"

    # -- routing ------------------------------------------------------

    async def route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[dict, PlainTextResponse, StreamResponse]]:
        obs.add("serve.requests")
        endpoint = path
        if path.startswith("/v1/progress/"):
            endpoint = "/v1/progress/*"
        endpoint = f"{method} {endpoint}"
        self._endpoints[endpoint] = self._endpoints.get(endpoint, 0) + 1
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/stats":
            counters = obs.counters()
            return 200, {
                "cache": self.cache_info,
                "counters": counters,
                "dispatch": {
                    k: v
                    for k, v in counters.items()
                    if k.startswith("engine.dispatch.")
                },
                "inflight": len(self._inflight),
                "uptime_s": time.time() - self._started,
                "endpoints": dict(self._endpoints),
                "progress": len(self._progress),
            }
        if method == "GET" and path == "/metrics":
            return 200, PlainTextResponse(self._metrics_text())
        if method == "GET" and path == "/v1/progress":
            return 200, {
                "studies": [log.describe() for log in self._progress.values()]
            }
        if method == "GET" and path.startswith("/v1/progress/"):
            key = path[len("/v1/progress/") :]
            log = self._progress.get(key)
            if log is None:
                return 404, {"error": f"unknown progress key {key!r}"}
            return 200, StreamResponse(self._stream_progress(log))
        if method == "POST" and path in ("/v1/study", "/v1/sweep"):
            kind = path.rsplit("/", 1)[1]
            try:
                payload = json.loads(body or b"{}")
            except ValueError:
                obs.add("serve.errors")
                return 400, {"error": "body is not valid JSON"}
            if not isinstance(payload, dict):
                obs.add("serve.errors")
                return 400, {"error": "body must be a JSON object"}
            allowed = _STUDY_KEYS if kind == "study" else _SWEEP_KEYS
            unknown = sorted(set(payload) - allowed)
            if unknown:
                obs.add("serve.errors")
                return 400, {
                    "error": f"unknown {kind} fields: {', '.join(unknown)}",
                    "allowed": sorted(allowed),
                }
            try:
                return 200, await self.submit(kind, payload)
            except ReproError as exc:
                obs.add("serve.errors")
                return 422, {"error": str(exc)}
        return 404, {"error": f"no route {method} {path}"}


def _study_matrix(payload: dict):
    """The job matrix a study payload expands to (for dedup keying)."""
    from repro.engine.jobs import MachineSpec
    from repro.runtime import ExecutionMode

    nprocs = payload.get("nprocs")
    spec = MachineSpec.coerce(
        payload.get("machine"),
        nprocs=64 if nprocs is None else nprocs,
        library=payload.get("library"),
    )
    benchmarks = payload.get("benchmarks")
    if isinstance(benchmarks, str):
        benchmarks = (benchmarks,)
    from repro.experiments_registry import EXPERIMENT_KEYS
    from repro.programs import BENCHMARKS

    return build_matrix(
        tuple(benchmarks or BENCHMARKS),
        tuple(payload.get("keys") or EXPERIMENT_KEYS),
        machine=spec,
        config_overrides=payload.get("config_overrides"),
        mode=payload.get("mode") or ExecutionMode.TIMING,
        fast=payload.get("fast"),
    )


def _summary(kind: str, outcomes, cache_info: Optional[dict]) -> dict:
    executed = sum(not o.cached for o in outcomes)
    return {
        "kind": kind,
        "cells": len(outcomes),
        "cache_hits": len(outcomes) - executed,
        "executed": executed,
        "cache": cache_info,
        "results": [
            {
                "benchmark": o.record["benchmark"],
                "experiment": o.record["experiment"],
                "library": o.record["library"],
                "static_count": o.record["result"]["static_count"],
                "dynamic_count": o.record["result"]["dynamic_count"],
                "execution_time": o.record["result"]["execution_time"],
                "fingerprint": o.record["fingerprint"],
                "cached": o.cached,
            }
            for o in outcomes
        ],
    }


class ReproServer:
    """The asyncio socket layer around :class:`ServeApp`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`
    after startup).  :meth:`serve_forever` blocks (the CLI);
    :meth:`start` runs the loop in a daemon thread (tests, embedding)
    and :meth:`close` tears it down.
    """

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional[asyncio.Task] = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = await reader.readexactly(length) if length else b""
            status, payload = await self.app.route(method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # keep the server up; report the fault
            obs.add("serve.errors")
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            if isinstance(payload, StreamResponse):
                await self._write_stream(writer, status, payload)
            else:
                if isinstance(payload, PlainTextResponse):
                    out = payload.text.encode()
                    content_type = payload.content_type
                else:
                    out = json.dumps(payload, sort_keys=True).encode()
                    content_type = "application/json"
                writer.write(
                    (
                        f"HTTP/1.1 {status} X\r\n"
                        f"Content-Type: {content_type}\r\n"
                        f"Content-Length: {len(out)}\r\n"
                        f"Connection: close\r\n\r\n"
                    ).encode("latin-1")
                    + out
                )
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, status: int, payload: StreamResponse
    ) -> None:
        """Chunked transfer encoding: each event is one chunk, flushed
        immediately, so subscribers see job events as they happen.  A
        disconnecting subscriber just ends its generator — the run it
        was watching is unaffected."""
        writer.write(
            (
                f"HTTP/1.1 {status} X\r\n"
                f"Content-Type: {payload.content_type}\r\n"
                f"Transfer-Encoding: chunked\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        async for chunk in payload.chunks:
            if not chunk:
                continue
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _serve(self) -> None:
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await server.serve_forever()

    def serve_forever(self) -> None:
        """Run the server on the current thread until interrupted."""
        asyncio.run(self._serve())

    def start(self) -> "ReproServer":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._task = loop.create_task(self._serve())
            try:
                loop.run_until_complete(self._task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("repro serve failed to start")
        return self

    def close(self) -> None:
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
