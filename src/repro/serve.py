"""``repro serve`` — an asyncio HTTP front-end over the experiment engine.

The server accepts study and sweep requests as JSON, runs them through
one shared :class:`~repro.engine.ExperimentEngine` configuration (cache
backend, dispatcher, worker count — all fixed at startup), and returns
the result summary plus per-cell results.  Two properties make it more
than a thin RPC wrapper:

* **in-flight dedup** — a study request is keyed by the content
  fingerprints of the jobs it expands to (a sweep by its canonical
  payload), so a second identical submission that arrives while the
  first is still running awaits the *same* execution instead of
  spawning new jobs (``serve.dedup`` counts these).  Once the first
  run finishes, identical re-submissions are served by the result
  cache instead — either way, no job runs twice.
* **batched cost-only work** — sweep requests go through
  :func:`repro.sweep.run_sweep` with its default auto-batching, so a
  cost-only TIMING sweep evaluates each ``benchmark x experiment``
  cell's variants in one :func:`repro.runtime.simulate_many` call.

Protocol (all bodies JSON)::

    GET  /healthz   -> 200 {"ok": true}
    GET  /stats     -> 200 {"cache": ..., "counters": ..., "inflight": n}
    POST /v1/study  <- run_study kwargs subset  -> 200 result summary
    POST /v1/sweep  <- run_sweep kwargs subset  -> 200 result summary

Counters: ``serve.requests``, ``serve.studies``, ``serve.sweeps``,
``serve.dedup``, ``serve.errors`` — streamed through :mod:`repro.obs`
like the rest of the stack (enable a sink in the serving process to
collect them; ``GET /stats`` reports the live registry either way).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from functools import partial
from typing import Dict, Optional, Tuple

from repro.engine.core import ExperimentEngine, build_matrix, run_study
from repro.errors import ReproError
from repro.obs import core as obs
from repro.sweep import SweepAxis, run_sweep

__all__ = ["ReproServer", "ServeApp"]

#: request-payload keys forwarded to :func:`repro.run_study`
_STUDY_KEYS = frozenset(
    {
        "benchmarks",
        "keys",
        "machine",
        "nprocs",
        "library",
        "config_overrides",
        "mode",
        "fast",
    }
)
#: request-payload keys forwarded to :func:`repro.sweep.run_sweep`
_SWEEP_KEYS = frozenset(
    {
        "axes",
        "benchmarks",
        "keys",
        "machine",
        "library",
        "overrides",
        "config_overrides",
        "mode",
        "fast",
        "batched",
    }
)


class ServeApp:
    """Routing + dedup + execution, independent of the socket layer.

    The engine configuration (worker count, cache backend/root/URL,
    dispatcher) is fixed per app; requests choose *what* to run, never
    *where* results go — that is what lets concurrent requests share
    one backend and dedup against each other.
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = None,
        cache: bool = True,
        cache_dir=None,
        cache_backend: Optional[str] = None,
        cache_url: Optional[str] = None,
        dispatcher=None,
    ) -> None:
        self.engine_kwargs = {
            "jobs": jobs,
            "cache": cache,
            "cache_dir": cache_dir,
            "cache_backend": cache_backend,
            "cache_url": cache_url,
            "dispatcher": dispatcher,
        }
        # probe the configuration eagerly so a bad backend/dispatcher
        # fails at startup, not on the first request
        self.cache_info = ExperimentEngine(**self.engine_kwargs).cache.describe()
        self._inflight: Dict[str, "asyncio.Future"] = {}

    # -- request keys -------------------------------------------------

    def _study_key(self, payload: dict) -> str:
        """Key a study by the content fingerprints of its job matrix —
        two requests that expand to the same jobs dedup even when the
        payloads spell the machine differently."""
        jobs = _study_matrix(payload)
        digest = hashlib.sha256()
        for job in jobs:
            digest.update(job.fingerprint().encode())
            digest.update(b"\n")
        return "study:" + digest.hexdigest()

    def _sweep_key(self, payload: dict) -> str:
        canon = json.dumps(payload, sort_keys=True, default=str)
        return "sweep:" + hashlib.sha256(canon.encode()).hexdigest()

    # -- execution ----------------------------------------------------

    def _run_study(self, payload: dict) -> dict:
        kwargs = {k: payload[k] for k in payload if k in _STUDY_KEYS}
        study = run_study(**kwargs, **self.engine_kwargs)
        obs.add("serve.studies")
        return _summary("study", study.outcomes, study.cache_info)

    def _run_sweep(self, payload: dict) -> dict:
        kwargs = {
            k: payload[k] for k in payload if k in _SWEEP_KEYS and k != "axes"
        }
        axes = [
            SweepAxis(str(a["name"]), tuple(a["values"]))
            for a in payload.get("axes") or ()
        ]
        sweep = run_sweep(axes=axes, **kwargs, **self.engine_kwargs)
        obs.add("serve.sweeps")
        summary = _summary("sweep", sweep.outcomes, sweep.cache_info)
        summary["points"] = len(sweep.points)
        return summary

    async def submit(self, kind: str, payload: dict) -> dict:
        """Run (or join) a request; identical in-flight submissions
        share one execution."""
        if kind == "study":
            key, work = self._study_key(payload), self._run_study
        else:
            key, work = self._sweep_key(payload), self._run_sweep

        loop = asyncio.get_running_loop()
        task = self._inflight.get(key)
        deduped = task is not None
        if deduped:
            obs.add("serve.dedup")
        else:
            task = loop.run_in_executor(None, partial(work, payload))
            task.add_done_callback(partial(self._settle, key))
            self._inflight[key] = task
        result = await asyncio.shield(task)
        return dict(result, deduped=deduped)

    def _settle(self, key: str, task: "asyncio.Future") -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            task.exception()  # retrieved by every awaiter; silence the loop

    # -- routing ------------------------------------------------------

    async def route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        obs.add("serve.requests")
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/stats":
            return 200, {
                "cache": self.cache_info,
                "counters": obs.counters(),
                "inflight": len(self._inflight),
            }
        if method == "POST" and path in ("/v1/study", "/v1/sweep"):
            kind = path.rsplit("/", 1)[1]
            try:
                payload = json.loads(body or b"{}")
            except ValueError:
                obs.add("serve.errors")
                return 400, {"error": "body is not valid JSON"}
            if not isinstance(payload, dict):
                obs.add("serve.errors")
                return 400, {"error": "body must be a JSON object"}
            allowed = _STUDY_KEYS if kind == "study" else _SWEEP_KEYS
            unknown = sorted(set(payload) - allowed)
            if unknown:
                obs.add("serve.errors")
                return 400, {
                    "error": f"unknown {kind} fields: {', '.join(unknown)}",
                    "allowed": sorted(allowed),
                }
            try:
                return 200, await self.submit(kind, payload)
            except ReproError as exc:
                obs.add("serve.errors")
                return 422, {"error": str(exc)}
        return 404, {"error": f"no route {method} {path}"}


def _study_matrix(payload: dict):
    """The job matrix a study payload expands to (for dedup keying)."""
    from repro.engine.jobs import MachineSpec
    from repro.runtime import ExecutionMode

    nprocs = payload.get("nprocs")
    spec = MachineSpec.coerce(
        payload.get("machine"),
        nprocs=64 if nprocs is None else nprocs,
        library=payload.get("library"),
    )
    benchmarks = payload.get("benchmarks")
    if isinstance(benchmarks, str):
        benchmarks = (benchmarks,)
    from repro.experiments_registry import EXPERIMENT_KEYS
    from repro.programs import BENCHMARKS

    return build_matrix(
        tuple(benchmarks or BENCHMARKS),
        tuple(payload.get("keys") or EXPERIMENT_KEYS),
        machine=spec,
        config_overrides=payload.get("config_overrides"),
        mode=payload.get("mode") or ExecutionMode.TIMING,
        fast=payload.get("fast"),
    )


def _summary(kind: str, outcomes, cache_info: Optional[dict]) -> dict:
    executed = sum(not o.cached for o in outcomes)
    return {
        "kind": kind,
        "cells": len(outcomes),
        "cache_hits": len(outcomes) - executed,
        "executed": executed,
        "cache": cache_info,
        "results": [
            {
                "benchmark": o.record["benchmark"],
                "experiment": o.record["experiment"],
                "library": o.record["library"],
                "static_count": o.record["result"]["static_count"],
                "dynamic_count": o.record["result"]["dynamic_count"],
                "execution_time": o.record["result"]["execution_time"],
                "fingerprint": o.record["fingerprint"],
                "cached": o.cached,
            }
            for o in outcomes
        ],
    }


class ReproServer:
    """The asyncio socket layer around :class:`ServeApp`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`
    after startup).  :meth:`serve_forever` blocks (the CLI);
    :meth:`start` runs the loop in a daemon thread (tests, embedding)
    and :meth:`close` tears it down.
    """

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional[asyncio.Task] = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = await reader.readexactly(length) if length else b""
            status, payload = await self.app.route(method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # keep the server up; report the fault
            obs.add("serve.errors")
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            try:
                out = json.dumps(payload, sort_keys=True).encode()
                writer.write(
                    (
                        f"HTTP/1.1 {status} X\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(out)}\r\n"
                        f"Connection: close\r\n\r\n"
                    ).encode("latin-1")
                    + out
                )
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()

    async def _serve(self) -> None:
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await server.serve_forever()

    def serve_forever(self) -> None:
        """Run the server on the current thread until interrupted."""
        asyncio.run(self._serve())

    def start(self) -> "ReproServer":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._task = loop.create_task(self._serve())
            try:
                loop.run_until_complete(self._task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("repro serve failed to start")
        return self

    def close(self) -> None:
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
