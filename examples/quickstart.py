#!/usr/bin/env python
"""Quickstart: compile a ZL program, optimize its communication, and run
it on a simulated Cray T3D.

Run:  python examples/quickstart.py
"""

from repro import (
    ExecutionMode,
    OptimizationConfig,
    compile_program,
    emit_c,
    reference_run,
    simulate,
    t3d,
)

SOURCE = """
program quickstart;

config n : integer = 32;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];

var T, Tnew : [R] double;
var residual : double;

procedure main();
begin
  -- a hot plate: fixed hot west edge, cold interior
  [R] T := 100.0 - 95.0 * min(index2, 8.0) / 8.0;
  for step := 1 to 50 do
    [In] Tnew := 0.25 * (T@east + T@west + T@north + T@south);
    [In] T := Tnew;
  end;
  [In] residual := max<< abs(T - Tnew);
end;
"""


def main() -> None:
    # 1. compile with full communication optimization (the paper's "pl")
    program = compile_program(SOURCE, "quickstart.zl", opt=OptimizationConfig.full())

    # 2. peek at the generated SPMD pseudo-C: the IRONMAN calls are the
    #    communication the optimizer produced
    emitted = emit_c(program)
    comm_lines = [l.strip() for l in emitted.text.splitlines() if "/* comm" in l]
    print("IRONMAN calls in the steady-state loop:")
    for line in comm_lines[:6]:
        print(f"  {line}")
    print(f"  ... ({emitted.comm_lines} communication lines total)\n")

    # 3. simulate on a 16-node T3D partition, computing real data
    machine = t3d(16, "pvm")
    result = simulate(program, machine, ExecutionMode.NUMERIC)
    print(f"machine:        {machine.describe()}")
    print(f"simulated time: {result.time * 1e3:.3f} model milliseconds")
    print(f"transfers:      {result.static_comm_count} static, "
          f"{result.dynamic_comm_count} executed per processor")
    print(f"messages:       {result.instrument.total_messages} "
          f"({result.instrument.total_bytes} bytes)")
    print(f"residual:       {result.scalars['residual']:.6f}")

    # 4. the distributed run computes exactly what a sequential run does
    reference = reference_run(compile_program(SOURCE, "quickstart.zl"))
    import numpy as np

    assert np.allclose(result.array("T"), reference.array("T"))
    print("\ndistributed result matches the sequential reference — the")
    print("optimizer moved every byte the stencil needed, and no more.")


if __name__ == "__main__":
    main()
