#!/usr/bin/env python
"""Reproduce the paper's whole-program study at reduced scale.

Runs all four benchmarks (TOMCATV, SWM, SIMPLE, SP) under all six
experiment keys on a 16-node partition with reduced problem sizes —
submitted as a job matrix through :func:`repro.run_study`, the parallel
cached experiment engine — and prints the Figure 10-style scaled-time
tables.  The full paper-scale study (64 nodes, default sizes) lives in
the benchmark harness:

    pytest benchmarks/ --benchmark-only

Run:  python examples/paper_study.py
"""

import os

from repro import run_study
from repro.analysis import format_table
from repro.analysis.figures import (
    figure8_counts,
    figure10a_times,
    figure10b_times,
    figure12_heuristic_times,
)
from repro.programs import BENCHMARKS, small_config


def main() -> None:
    overrides = {name: small_config(name) for name in BENCHMARKS}
    # a bit more work than the test configs so the ratios are meaningful
    overrides["tomcatv"].update(niters=10, nsolve=6)
    overrides["swm"].update(nsteps=30)
    overrides["simple"].update(niters=8, ncond=6)
    overrides["sp"].update(niters=10, nsweep=3)

    jobs = min(4, os.cpu_count() or 1)
    print(
        f"running 4 benchmarks x 6 experiments on 16 simulated nodes "
        f"({jobs} worker{'s' if jobs != 1 else ''}, cached under "
        f".repro-cache/) ...\n"
    )
    results = run_study(
        benchmarks=BENCHMARKS,
        nprocs=16,
        config_overrides=overrides,
        jobs=jobs,
    )

    for title, (headers, rows) in [
        ("Figure 8 — comm count reduction (scaled)", figure8_counts(results)),
        ("Figure 10(a) — scaled times, PVM", figure10a_times(results)),
        ("Figure 10(b) — pl vs pl with shmem", figure10b_times(results)),
        ("Figure 12 — combining heuristics (SHMEM)", figure12_heuristic_times(results)),
    ]:
        print(format_table(headers, rows, title=title))
        print()

    fresh = len(results.outcomes) - results.cache_hits
    print(
        f"engine: {results.cache_hits} of {len(results.outcomes)} cells "
        f"from cache, {fresh} simulated — re-run this script for a warm, "
        f"near-instant pass."
    )
    print()
    print("note: at this reduced scale the PVM orderings (baseline > rr >")
    print("cc > pl) already match the paper, but the SHMEM degradation on")
    print("TOMCATV/SP is a property of the full 64-node wavefront and only")
    print("appears at paper scale — run `pytest benchmarks/ --benchmark-only`")
    print("for the faithful study.")


if __name__ == "__main__":
    main()
