#!/usr/bin/env python
"""See pipelining happen: one processor's event timeline, before and
after.

A block produces data early and uses the transferred strips late.
Without pipelining, each DR/SR/DN/SV set huddles at the point of use, so
the wire time turns into waiting (`.`).  With pipelining, the sends fire
right after the data is ready, the intervening computation (`#`) covers
the transfer, and the waits disappear.

Run:  python examples/pipeline_timeline.py
"""

from repro import OptimizationConfig, SimOptions, compile_program, simulate, t3d
from repro.analysis.timeline import render_timeline, summarize

SOURCE = """
program pipe;

config n : integer = 48;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction east  = [0, 1];
direction south = [1, 0];

var A, B, W1, W2, OUT : [R] double;

procedure main();
begin
  [R] A := index1 * 0.5 + index2;
  [R] B := index2 * 0.25 - index1;
  for t := 1 to 2 do
    -- the strips of A and B become ready here ...
    [In] A := A * 0.999 + 0.001;
    [In] B := B * 0.999 - 0.001;
    -- ... this computation could hide their transfer ...
    [In] W1 := A * A * 0.1 + B * 0.2 + A * B * 0.01;
    [In] W2 := W1 * W1 * 0.5 - A * 0.125 + B * 0.25;
    [In] W1 := W1 * 0.9 + W2 * 0.1 + W1 * W2 * 0.001;
    -- ... and only here are the transferred strips used
    [In] OUT := A@east + B@south + W1;
  end;
end;
"""


def show(title: str, opt: OptimizationConfig) -> float:
    program = compile_program(SOURCE, "pipe.zl", opt=opt)
    result = simulate(
        program, t3d(16, "pvm"), options=SimOptions.timing(trace_rank=5)
    )
    print(f"--- {title} ---  (processor 5, total "
          f"{result.clocks[5] * 1e6:.1f} us)")
    print(render_timeline(result.trace, width=96))
    waits = [row for row in summarize(result.trace) if row[0] == "wait"]
    wait_us = waits[0][1] * 1e6 if waits else 0.0
    print(f"time spent waiting: {wait_us:.1f} us\n")
    return wait_us


def main() -> None:
    unpiped = show(
        "without pipelining (rr + cc)", OptimizationConfig.rr_cc()
    )
    piped = show(
        "with pipelining (rr + cc + pl)", OptimizationConfig.full()
    )
    print(f"pipelining removed {unpiped - piped:.1f} us of waiting per run —")
    print("the sends moved up to the data's ready point and the stencil")
    print("computation hid the wire time.")


if __name__ == "__main__":
    main()
