#!/usr/bin/env python
"""A tour of the three communication optimizations on the paper's own
Figure 1 example.

The program below is the paper's running example: ``B`` is produced,
read twice shifted east, and an unrelated array ``E`` is also read
shifted east.  Watch the transfer list change as each optimization is
switched on.

Run:  python examples/optimizer_tour.py
"""

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
from repro.ir.nodes import CommCall

SOURCE = """
program figure1;

config n : integer = 16;

region R  = [1..n, 1..n];
region In = [1..n, 1..n-1];

direction east = [0, 1];

var A, B, C, D, E : [R] double;

procedure main();
begin
  [R]  B := index1 * 0.1 + index2;
  [R]  E := index2 * 0.2;
  [In] A := B@east;
  [In] C := B@east;
  [In] D := E@east;
end;
"""

STAGES = [
    ("(a) naive generation (message vectorization)", OptimizationConfig.baseline()),
    ("(b) + redundant communication removal", OptimizationConfig.rr_only()),
    ("(c) + communication combination", OptimizationConfig.rr_cc()),
    ("(d) + communication pipelining", OptimizationConfig.full()),
]


def show(title: str, config: OptimizationConfig) -> None:
    program = compile_program(SOURCE, "figure1.zl", opt=config)
    print(f"{title}")
    block = list(program.walk_blocks())[0]
    for stmt in block.stmts:
        if isinstance(stmt, CommCall):
            print(f"    {stmt.describe()}")
        else:
            target = getattr(stmt, "target", "?")
            print(f"  {target} := ...")
    result = simulate(program, t3d(16), ExecutionMode.NUMERIC)
    print(
        f"  -> {result.static_comm_count} transfers in the text, "
        f"{result.dynamic_comm_count} executed per processor, "
        f"{result.time * 1e6:.1f} model microseconds\n"
    )


def main() -> None:
    print(__doc__)
    for title, config in STAGES:
        show(title, config)
    print("exactly the paper's Figure 1: removal deletes the second B")
    print("transfer, combination merges B and E into one message, and")
    print("pipelining hoists the send to just after the data is ready.")


if __name__ == "__main__":
    main()
