#!/usr/bin/env python
"""Writing your own ZL program: advection around a 1-D periodic ring.

Demonstrates the parts of ZL the other examples don't: rank-1 regions,
periodic wrap shifts (``@@`` — no boundary special-casing needed),
``repeat``/``until`` convergence loops, reductions driving control flow,
and NUMERIC-mode simulation (required when control flow depends on
reduced values).

Run:  python examples/writing_programs.py
"""

import numpy as np

from repro import (
    ExecutionMode,
    OptimizationConfig,
    compile_program,
    reference_run,
    simulate,
    t3d,
)

SOURCE = """
program advect;

config n : integer = 96;

region Line = [1..n];

direction upwind = [-1];

var Q, Qold : [Line] double;
var change : double;

procedure main();
begin
  -- an initial pulse of density on a periodic ring
  [Line] Q := exp(0.0 - (index1 - 20.0) * (index1 - 20.0) * 0.02);
  repeat
    [Line] Qold := Q;
    -- first-order upwind advection: material circulates rightward;
    -- the wrap shift (@@) makes the ring periodic with no boundary code
    [Line] Q := Q - 0.4 * (Q - Q@@upwind);
    [Line] change := max<< abs(Q - Qold);
  until change < 0.03;
end;
"""


def main() -> None:
    program = compile_program(SOURCE, "advect.zl", opt=OptimizationConfig.full())

    # rank-1 arrays live on one mesh column; a (4,1) machine keeps all
    # four processors busy
    machine = t3d(4, "pvm")
    # control flow depends on the reduction, so run NUMERIC
    result = simulate(program, machine, ExecutionMode.NUMERIC)

    reference = reference_run(compile_program(SOURCE, "advect.zl"))
    assert np.allclose(result.array("Q"), reference.array("Q"))

    q = result.array("Q")
    print(f"converged with change = {result.scalars['change']:.6f}")
    print(f"pulse peak now at cell {int(np.argmax(q)) + 1} "
          f"(started at cell 20; the ring is periodic, so it circulates)")
    print(f"mass conserved: {q.sum():.4f} (periodic upwind conserves mass)")
    print(f"transfers per processor: {result.dynamic_comm_count}")
    print(f"simulated time: {result.time * 1e3:.3f} model ms")
    print("\ndensity profile:")
    for i in range(0, 96, 8):
        bar = "#" * int(q[i] * 40)
        print(f"  cell {i + 1:3d} | {bar}")


if __name__ == "__main__":
    main()
