#!/usr/bin/env python
"""Run one workload across every simulated machine/library combination.

The workload is a red-black-style relaxation with combinable transfers —
enough communication that the library differences the paper measures
(Figure 6) surface as whole-program effects: the Paragon's callback
primitives are ruinous, its asynchronous ones no better than
csend/crecv, and the T3D's one-way SHMEM edges out PVM on this
load-balanced kernel.

Run:  python examples/machine_comparison.py
"""

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate
from repro.analysis import format_table
from repro.machine import paragon, t3d

SOURCE = """
program relax;

config n     : integer = 64;
config steps : integer = 30;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];

var U, V, F : [R] double;

procedure main();
begin
  [R] U := 0.0;
  [R] V := 0.0;
  [R] F := sin(index1 * 0.2) * cos(index2 * 0.2);
  for s := 1 to steps do
    [In] U := 0.25 * (V@east + V@west + V@north + V@south) - 0.25 * F;
    [In] V := 0.25 * (U@east + U@west + U@north + U@south) - 0.25 * F;
  end;
end;
"""

MACHINES = [
    ("Paragon csend/crecv", lambda: paragon(16, "nx")),
    ("Paragon isend/irecv", lambda: paragon(16, "nx_async")),
    ("Paragon hsend/hrecv", lambda: paragon(16, "nx_callback")),
    ("T3D PVM", lambda: t3d(16, "pvm")),
    ("T3D SHMEM", lambda: t3d(16, "shmem")),
]


def main() -> None:
    program = compile_program(SOURCE, "relax.zl", opt=OptimizationConfig.full())
    rows = []
    for name, factory in MACHINES:
        machine = factory()
        result = simulate(program, machine, ExecutionMode.TIMING)
        rows.append(
            [
                name,
                result.time * 1e3,
                result.dynamic_comm_count,
                result.instrument.total_messages,
            ]
        )
    print(
        format_table(
            ["machine / library", "time (model ms)", "dyn comms", "messages"],
            rows,
            float_fmt=".3f",
            title="One workload, five communication mechanisms (16 nodes)",
        )
    )
    print()
    print("the T3D rows run the same compiled program as the Paragon rows —")
    print("IRONMAN rebinds DR/SR/DN/SV per library at machine-construction")
    print("time, exactly as the paper's single-source compilation does.")


if __name__ == "__main__":
    main()
